// UDP endpoints and the contention traffic generator used throughout the
// paper's evaluation ("a UDP traffic generator that is quite capable of
// overwhelming any TCP application that does not have a reservation").
#pragma once

#include <cstdint>
#include <functional>

#include "net/host.hpp"
#include "sim/task.hpp"

namespace mgq::net {

/// Connectionless datagram endpoint bound to a host port.
class UdpSocket : public PacketReceiver {
 public:
  /// Binds to `port` on `host` (0 picks an ephemeral port).
  UdpSocket(Host& host, PortId port = 0);
  ~UdpSocket() override;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Sends one datagram of `payload_bytes` to (dst, dst_port). Datagrams
  /// larger than the MTU payload are fragmented into MTU-sized packets.
  void sendTo(NodeId dst, PortId dst_port, std::int32_t payload_bytes);

  /// Sends one datagram carrying real bytes. Fragments share the slice's
  /// underlying buffer (zero-copy): each packet's UdpHeader holds a
  /// subslice view of `payload`.
  void sendTo(NodeId dst, PortId dst_port, BufSlice payload);

  /// Receive callback: invoked with each arriving datagram packet.
  void onReceive(std::function<void(const Packet&)> cb) {
    receive_cb_ = std::move(cb);
  }

  void onPacket(Packet p) override;

  PortId port() const { return port_; }
  std::uint64_t datagramsSent() const { return datagrams_sent_; }
  std::uint64_t packetsReceived() const { return packets_received_; }
  std::int64_t bytesReceived() const { return bytes_received_; }

  static constexpr std::int32_t kMtuPayload = 1472;  // 1500 - IP - UDP

 private:
  Host& host_;
  PortId port_;
  std::function<void(const Packet&)> receive_cb_;
  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t next_datagram_id_ = 1;
  std::uint64_t packets_received_ = 0;
  std::int64_t bytes_received_ = 0;
};

/// Constant-bit-rate (or on/off bursty) UDP source. Runs as a simulated
/// process from start() until stop(); emits MTU-sized datagrams paced to
/// the target rate.
class UdpTrafficGenerator {
 public:
  struct Config {
    double rate_bps = 50e6;
    std::int32_t datagram_bytes = UdpSocket::kMtuPayload;
    /// On/off burst structure; on_fraction == 1 means pure CBR.
    double on_fraction = 1.0;
    sim::Duration period = sim::Duration::millis(100);
  };

  UdpTrafficGenerator(Host& src, NodeId dst, PortId dst_port,
                      const Config& config);

  /// Starts emitting at the current simulated time.
  void start();
  /// Stops after the current datagram.
  void stop() { running_ = false; }
  bool running() const { return running_; }

  std::uint64_t datagramsSent() const { return socket_.datagramsSent(); }

 private:
  sim::Task<> run();

  Host& src_;
  UdpSocket socket_;
  NodeId dst_;
  PortId dst_port_;
  Config config_;
  bool running_ = false;
};

/// Simple sink that counts received UDP traffic on a well-known port.
class UdpSink {
 public:
  UdpSink(Host& host, PortId port) : socket_(host, port) {}
  std::int64_t bytesReceived() const { return socket_.bytesReceived(); }
  std::uint64_t packetsReceived() const { return socket_.packetsReceived(); }

 private:
  UdpSocket socket_;
};

}  // namespace mgq::net
