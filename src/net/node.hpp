// Nodes (hosts and routers) and their network interfaces.
//
// An Interface owns the egress side of a point-to-point attachment: a
// diffserv qdisc (strict priority EF > LL > BE) drained by a transmitter
// at the link rate, plus an ingress DS policy (classify/mark/police)
// applied to packets arriving *into* the node — that is where the paper's
// edge routers police premium flows.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/classifier.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace mgq::net {

class Node;

struct InterfaceStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_packets = 0;
  std::int64_t tx_bytes = 0;
  std::int64_t rx_bytes = 0;
  std::uint64_t drops_overflow = 0;
  std::uint64_t drops_policed = 0;
  std::uint64_t drops_link_down = 0;  // arrived while the interface was down
  std::uint64_t drops_fault = 0;      // eaten by an injected loss episode
  std::uint64_t drops_partition = 0;  // blackholed by a directional partition
  std::uint64_t drops_pool_pressure = 0;  // shed at the pool's byte ceiling
  std::uint64_t corrupted = 0;        // mutated in flight by a fault injector
  std::uint64_t duplicated = 0;       // cloned in flight by a fault injector
  std::uint64_t reordered = 0;        // delayed past later packets in flight
};

struct QdiscConfig {
  std::int64_t ef_capacity_bytes = 256 * 1024;
  std::int64_t ll_capacity_bytes = 64 * 1024;
  std::int64_t be_capacity_bytes = 64 * 1024;
};

class Interface {
 public:
  Interface(sim::Simulator& sim, Node& owner, std::string name,
            const QdiscConfig& qdisc);

  /// Wires this interface to `peer` with the given egress rate and one-way
  /// propagation delay. Each direction is configured on its own interface.
  void connect(Interface& peer, double rate_bps, sim::Duration delay);

  /// Enqueues a packet for transmission (egress path).
  void send(Packet p);

  /// Entry point for packets arriving from the wire (ingress path):
  /// applies the ingress DS policy, then hands the packet to the node.
  void receive(Packet p);

  Node& owner() { return owner_; }
  Interface* peer() { return peer_; }
  const std::string& name() const { return name_; }
  double rateBps() const { return rate_bps_; }
  sim::Duration propagationDelay() const { return delay_; }
  bool connected() const { return peer_ != nullptr; }

  DsPolicy& ingressPolicy() { return ingress_policy_; }
  const DsQdisc& qdisc() const { return qdisc_; }
  const InterfaceStats& stats() const { return stats_; }

  // --- fault model (driven by net/faults.hpp) ----------------------------
  /// Administrative/fault link state. A down interface holds queued
  /// packets without transmitting them, and packets arriving over the
  /// wire are lost. Fires the registered link-state observers on every
  /// transition.
  void setUp(bool up);
  bool isUp() const { return up_; }

  /// Registers an observer fired on every up/down transition. Observers
  /// must outlive the interface (or never be fired after destruction);
  /// there is no removal — this models device monitors, which persist.
  void onLinkStateChange(std::function<void(Interface&, bool up)> observer) {
    link_observers_.push_back(std::move(observer));
  }

  /// Egress wire-loss hook: consulted after serialization, before the
  /// packet propagates. Return true to drop it (counts drops_fault).
  /// Pass nullptr to clear.
  void setLossHook(std::function<bool(const Packet&)> hook) {
    loss_hook_ = std::move(hook);
  }

  /// Egress corruption hook: consulted after the loss hook for surviving
  /// packets. The hook may mutate the packet (injectors swap in a freshly
  /// allocated payload copy so shared slices stay immutable — see
  /// CorruptionInjector). Return true when the packet was mutated (counts
  /// `corrupted`). Pass nullptr to clear.
  void setCorruptHook(std::function<bool(Packet&)> hook) {
    corrupt_hook_ = std::move(hook);
  }

  /// Egress duplication hook: return true to clone the serialized packet.
  /// Both copies propagate with the link delay — the original first, the
  /// clone immediately behind it in the same event order (counts
  /// `duplicated`). The clone shares the original's payload buffers.
  void setDuplicateHook(std::function<bool(const Packet&)> hook) {
    duplicate_hook_ = std::move(hook);
  }

  /// Egress reorder hook: return an extra propagation delay to hold the
  /// packet back past later traffic, or Duration::zero() to leave it on
  /// the FIFO wire. Held packets live in a keyed side store (the FIFO
  /// `wire_` deque would deliver them in entry order regardless of
  /// delay), so delivery lands exactly at delay+extra under the kernel's
  /// `(at, seq)` total order. Counts `reordered`.
  void setReorderHook(std::function<sim::Duration(const Packet&)> hook) {
    reorder_hook_ = std::move(hook);
  }

  /// Directional blackhole: while partitioned, this interface's egress
  /// traffic burns its serialization bandwidth but never propagates
  /// (counts `drops_partition`). The reverse direction is unaffected —
  /// partition the peer too for a full cut. Unlike setUp(false), queued
  /// packets keep draining, modelling a path that silently eats traffic
  /// rather than a device that stops transmitting.
  void setPartitioned(bool partitioned) { partitioned_ = partitioned; }
  bool isPartitioned() const { return partitioned_; }

  /// Packets currently held back by the reorder hook.
  std::size_t delayedInFlight() const { return delayed_wire_.size(); }

 private:
  void transmitNext();
  void startTransmit(Packet p);
  void onSerialized();
  void onPropagated();
  void onDelayedPropagated(std::uint64_t id);
  void propagate(Packet p);

  sim::Simulator& sim_;
  Node& owner_;
  std::string name_;
  // The constructing thread's payload pool, cached so the egress hot path
  // checks pressure without a thread_local lookup per packet. Interfaces
  // live and die on their Simulator's thread, same as the pool.
  BufferPool* pool_;
  Interface* peer_ = nullptr;
  double rate_bps_ = 0.0;
  sim::Duration delay_ = sim::Duration::zero();
  DsQdisc qdisc_;
  DsPolicy ingress_policy_;
  // Packets owned by the interface while their timer events are pending,
  // so those events capture only `this` and stay within the kernel's
  // small-buffer callbacks (no heap allocation per transmission). The
  // wire is FIFO: propagation delay is constant per link, so in-flight
  // packets complete in the order they entered.
  std::optional<Packet> tx_packet_;  // serializing onto the wire
  std::deque<Packet> wire_;          // propagating towards the peer
  // Packets held back by the reorder hook: keyed by a per-interface
  // sequence number because their completion events fire out of entry
  // order (std::map keeps iteration deterministic for teardown).
  std::map<std::uint64_t, Packet> delayed_wire_;
  std::uint64_t delayed_seq_ = 0;
  bool transmitting_ = false;
  bool up_ = true;
  bool partitioned_ = false;
  std::vector<std::function<void(Interface&, bool)>> link_observers_;
  std::function<bool(const Packet&)> loss_hook_;
  std::function<bool(Packet&)> corrupt_hook_;
  std::function<bool(const Packet&)> duplicate_hook_;
  std::function<sim::Duration(const Packet&)> reorder_hook_;
  InterfaceStats stats_;
};

class Node {
 public:
  Node(sim::Simulator& sim, NodeId id, std::string name)
      : sim_(sim), id_(id), name_(std::move(name)) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  virtual ~Node() = default;

  /// Called by an interface once an arriving packet passed ingress policy.
  virtual void deliver(Packet p, Interface& in) = 0;

  Interface& addInterface(const QdiscConfig& qdisc = {});

  sim::Simulator& simulator() { return sim_; }
  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  std::vector<std::unique_ptr<Interface>>& interfaces() {
    return interfaces_;
  }

 protected:
  sim::Simulator& sim_;
  NodeId id_;
  std::string name_;
  std::vector<std::unique_ptr<Interface>> interfaces_;
};

}  // namespace mgq::net
