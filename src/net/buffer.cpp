#include "net/buffer.hpp"

#include <atomic>
#include <cassert>
#include <new>

namespace mgq::net {

namespace {

std::atomic<std::int64_t> g_total_live{0};
std::atomic<std::int64_t> g_total_live_bytes{0};

// The thread's pool, null before first use and after the pool's own
// destruction (thread exit) — releases arriving that late free to the
// heap instead of touching a dead free list.
thread_local BufferPool* tls_pool = nullptr;

}  // namespace

BufferPool& BufferPool::local() {
  static thread_local BufferPool pool;
  return pool;
}

std::int64_t BufferPool::totalLive() {
  return g_total_live.load(std::memory_order_relaxed);
}

std::int64_t BufferPool::totalLiveBytes() {
  return g_total_live_bytes.load(std::memory_order_relaxed);
}

BufferPool::BufferPool() { tls_pool = this; }

BufferPool::~BufferPool() {
  tls_pool = nullptr;
  for (auto*& head : free_lists_) {
    while (head != nullptr) {
      Buffer* next = head->next_free_;
      destroy(head);
      head = next;
    }
  }
}

bool BufferPool::ownsCurrentThread() const { return tls_pool == this; }

Buffer* BufferPool::create(std::size_t capacity, std::int8_t size_class,
                           BufferPool* owner) {
  void* raw = ::operator new(sizeof(Buffer) + capacity);
  auto* b = new (raw) Buffer();
  b->capacity_ = static_cast<std::uint32_t>(capacity);
  b->size_class_ = size_class;
  b->owner_ = owner;
  return b;
}

void BufferPool::destroy(Buffer* b) {
  b->~Buffer();
  ::operator delete(static_cast<void*>(b));
}

std::int8_t BufferPool::classFor(std::size_t capacity) {
  for (int c = 0; c < kNumClasses; ++c) {
    if (capacity <= kClassSizes[c]) return static_cast<std::int8_t>(c);
  }
  return -1;
}

BufferRef BufferPool::tryAllocate(std::size_t capacity) {
  if (ceiling_bytes_ > 0) {
    const auto cls = classFor(capacity);
    const auto rounded = static_cast<std::int64_t>(
        cls >= 0 ? kClassSizes[cls] : capacity);
    if (stats_.live_bytes + rounded > ceiling_bytes_) {
      ++stats_.ceiling_rejections;
      return BufferRef{};
    }
  }
  return allocate(capacity);
}

BufferRef BufferPool::allocate(std::size_t capacity) {
  assert(capacity > 0 && capacity <= 0x7fffffff);
  ++stats_.allocations;
  ++stats_.live;
  if (stats_.live > stats_.high_water) stats_.high_water = stats_.live;
  const auto cls = classFor(capacity);
  const auto rounded =
      static_cast<std::int64_t>(cls >= 0 ? kClassSizes[cls] : capacity);
  stats_.live_bytes += rounded;
  if (stats_.live_bytes > stats_.high_water_bytes) {
    stats_.high_water_bytes = stats_.live_bytes;
  }
  g_total_live.fetch_add(1, std::memory_order_relaxed);
  g_total_live_bytes.fetch_add(rounded, std::memory_order_relaxed);

  if (cls >= 0 && free_lists_[cls] != nullptr) {
    Buffer* b = free_lists_[cls];
    free_lists_[cls] = b->next_free_;
    --free_counts_[cls];
    b->next_free_ = nullptr;
    return BufferRef(b);
  }
  ++stats_.fresh;
  const auto size = cls >= 0 ? kClassSizes[cls] : capacity;
  return BufferRef(create(size, cls, this));
}

void BufferPool::recycleOrFree(Buffer* b) {
  --stats_.live;
  stats_.live_bytes -= static_cast<std::int64_t>(b->capacity_);
  const auto cls = b->size_class_;
  if (cls < 0 || free_counts_[cls] >= kMaxFreePerClass) {
    destroy(b);
    return;
  }
  ++stats_.recycled;
  b->next_free_ = free_lists_[cls];
  free_lists_[cls] = b;
  ++free_counts_[cls];
}

void Buffer::release() {
  assert(refs_ > 0);
  if (--refs_ != 0) return;
  g_total_live.fetch_sub(1, std::memory_order_relaxed);
  g_total_live_bytes.fetch_sub(static_cast<std::int64_t>(capacity_),
                               std::memory_order_relaxed);
  BufferPool* owner = owner_;
  if (owner != nullptr && owner->ownsCurrentThread()) {
    owner->recycleOrFree(this);
  } else {
    // Cross-thread (or post-pool-destruction) release: the free lists are
    // not safe to touch, so just give the block back to the heap. The
    // owner's `live` counter is intentionally left alone — per-pool stats
    // are only meaningful on the owning thread; the global counter above
    // is the cross-thread source of truth.
    BufferPool::destroy(this);
  }
}

}  // namespace mgq::net
