// Router: forwards packets by destination node id through a static routing
// table (filled in by Network::computeRoutes). Ingress DS policies live on
// the interfaces; the router itself is diffserv-oblivious beyond the
// priority qdisc on its egress ports — interior routers treat marked
// aggregates, as in the DS architecture.
#pragma once

#include <vector>

#include "net/node.hpp"

namespace mgq::net {

struct RouterStats {
  std::uint64_t forwarded = 0;
  std::uint64_t no_route_drops = 0;
};

class Router : public Node {
 public:
  using Node::Node;

  /// Node ids are small sequential integers (Network hands them out from
  /// a counter), so the table is a flat vector indexed by destination —
  /// one bounds check and one load on the per-packet forwarding path.
  void addRoute(NodeId dst, Interface& out) {
    if (dst >= routes_.size()) routes_.resize(dst + 1, nullptr);
    routes_[dst] = &out;
  }
  void clearRoutes() { routes_.clear(); }

  void deliver(Packet p, Interface& in) override;

  const RouterStats& stats() const { return stats_; }

 private:
  std::vector<Interface*> routes_;  // dst node id -> egress, null = no route
  RouterStats stats_;
};

}  // namespace mgq::net
