#include "net/token_bucket.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mgq::net {

TokenBucket::TokenBucket(sim::Simulator& sim, double rate_bps,
                         std::int64_t depth_bytes)
    : sim_(sim),
      rate_bps_(rate_bps),
      depth_bytes_(depth_bytes),
      tokens_(static_cast<double>(depth_bytes)),
      last_refill_(sim.now()) {
  assert(rate_bps > 0.0);
  assert(depth_bytes > 0);
}

void TokenBucket::refill() {
  const auto now = sim_.now();
  const double elapsed = (now - last_refill_).toSeconds();
  if (elapsed > 0.0) {
    tokens_ = std::min(static_cast<double>(depth_bytes_),
                       tokens_ + elapsed * rate_bps_ / 8.0);
    last_refill_ = now;
  }
}

bool TokenBucket::tryConsume(std::int64_t bytes) {
  refill();
  if (tokens_ + 1e-9 < static_cast<double>(bytes)) {
    ++stats_.policed;
    return false;
  }
  tokens_ -= static_cast<double>(bytes);
  ++stats_.conformed;
  return true;
}

sim::Duration TokenBucket::timeUntilConformant(std::int64_t bytes) {
  refill();
  const double deficit = static_cast<double>(bytes) - tokens_;
  if (deficit <= 0.0) return sim::Duration::zero();
  return sim::Duration::seconds(deficit * 8.0 / rate_bps_);
}

void TokenBucket::forceConsume(std::int64_t bytes) {
  refill();
  ++stats_.forced;
  tokens_ -= static_cast<double>(bytes);
  // Clamp the debt at one bucket depth: without this a burst of forced
  // sends drives tokens_ arbitrarily negative and the flow stays
  // non-conformant far longer than depth/rate seconds.
  const double floor = -static_cast<double>(depth_bytes_);
  if (tokens_ < floor) {
    tokens_ = floor;
    ++stats_.force_clamped;
  }
}

double TokenBucket::tokens() {
  refill();
  return tokens_;
}

double TokenBucket::peekTokens() const {
  const double elapsed = (sim_.now() - last_refill_).toSeconds();
  if (elapsed <= 0.0) return tokens_;
  return std::min(static_cast<double>(depth_bytes_),
                  tokens_ + elapsed * rate_bps_ / 8.0);
}

void TokenBucket::configure(double rate_bps, std::int64_t depth_bytes) {
  assert(rate_bps > 0.0);
  assert(depth_bytes > 0);
  refill();
  rate_bps_ = rate_bps;
  depth_bytes_ = depth_bytes;
  tokens_ = std::min(tokens_, static_cast<double>(depth_bytes));
}

std::int64_t TokenBucket::depthForRate(double rate_bps, double divisor) {
  assert(divisor > 0.0);
  const auto depth = static_cast<std::int64_t>(std::llround(rate_bps / divisor));
  // Never smaller than one MTU-sized packet, or nothing would ever conform.
  return std::max<std::int64_t>(depth, 1600);
}

}  // namespace mgq::net
