#include "net/faults.hpp"

#include <cassert>
#include <cstring>

#include "net/buffer.hpp"

namespace mgq::net {

LinkFault::LinkFault(Interface& a) : a_(&a), b_(a.peer()) {
  assert(b_ != nullptr && "LinkFault needs a connected interface");
}

LinkFault::LinkFault(Interface& a, Interface& b) : a_(&a), b_(&b) {
  assert(a.peer() == &b && b.peer() == &a &&
         "LinkFault endpoints must be peers");
}

void LinkFault::fail() {
  a_->setUp(false);
  b_->setUp(false);
}

void LinkFault::restore() {
  a_->setUp(true);
  b_->setUp(true);
}

LossInjector::LossInjector(Interface& iface, std::uint64_t seed)
    : iface_(&iface), rng_(seed) {}

LossInjector::~LossInjector() { stop(); }

void LossInjector::start(double drop_probability) {
  probability_ = drop_probability;
  if (active_) return;  // keep the hook; only the probability changed
  active_ = true;
  iface_->setLossHook([this](const Packet&) {
    if (!rng_.bernoulli(probability_)) return false;
    ++dropped_;
    return true;
  });
}

void LossInjector::stop() {
  if (!active_) return;
  active_ = false;
  iface_->setLossHook(nullptr);
}

CorruptionInjector::CorruptionInjector(Interface& iface, std::uint64_t seed)
    : iface_(&iface), rng_(seed) {}

CorruptionInjector::~CorruptionInjector() { stop(); }

void CorruptionInjector::start(double corrupt_probability) {
  probability_ = corrupt_probability;
  if (active_) return;  // keep the hook; only the probability changed
  active_ = true;
  iface_->setCorruptHook([this](Packet& p) {
    if (!rng_.bernoulli(probability_)) return false;
    return corrupt(p);
  });
}

void CorruptionInjector::stop() {
  if (!active_) return;
  active_ = false;
  iface_->setCorruptHook(nullptr);
}

bool CorruptionInjector::corrupt(Packet& p) {
  auto* h = p.tcp();
  if (h == nullptr) {
    ++skipped_;  // no integrity cover on this protocol: leave it intact
    return false;
  }
  if (!h->payload.empty()) {
    // Copy-on-corrupt: the original buffer may back retransmission-queue
    // slices and duplicate clones, whose visible windows are immutable.
    auto copy = BufferPool::local().tryAllocate(h->payload.size());
    if (!copy) {
      ++skipped_;  // pool at its ceiling: degrade rather than force
      return false;
    }
    std::memcpy(copy->data(), h->payload.data(), h->payload.size());
    const auto bit = rng_.uniformInt(
        0, static_cast<std::int64_t>(h->payload.size()) * 8 - 1);
    copy->data()[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    h->payload.buffer = std::move(copy);
    h->payload.offset = 0;  // length unchanged: same bytes, one bit off
  } else {
    // Pure ACK / SYN / FIN: flip a checksummed header field instead.
    switch (rng_.uniformInt(0, 2)) {
      case 0:
        h->seq ^= 1ull << rng_.uniformInt(0, 63);
        break;
      case 1:
        h->ack ^= 1ull << rng_.uniformInt(0, 63);
        break;
      default:
        h->window ^= 1u << rng_.uniformInt(0, 31);
        break;
    }
  }
  ++corrupted_;
  return true;
}

DuplicateInjector::DuplicateInjector(Interface& iface, std::uint64_t seed)
    : iface_(&iface), rng_(seed) {}

DuplicateInjector::~DuplicateInjector() { stop(); }

void DuplicateInjector::start(double duplicate_probability) {
  probability_ = duplicate_probability;
  if (active_) return;
  active_ = true;
  iface_->setDuplicateHook([this](const Packet&) {
    if (!rng_.bernoulli(probability_)) return false;
    ++duplicated_;
    return true;
  });
}

void DuplicateInjector::stop() {
  if (!active_) return;
  active_ = false;
  iface_->setDuplicateHook(nullptr);
}

ReorderInjector::ReorderInjector(Interface& iface, std::uint64_t seed,
                                 sim::Duration max_extra)
    : iface_(&iface), rng_(seed), max_extra_(max_extra) {
  assert(max_extra_ > sim::Duration::zero() &&
         "reorder needs a positive delay bound");
}

ReorderInjector::~ReorderInjector() { stop(); }

void ReorderInjector::start(double reorder_probability) {
  probability_ = reorder_probability;
  if (active_) return;
  active_ = true;
  iface_->setReorderHook([this](const Packet&) {
    if (!rng_.bernoulli(probability_)) return sim::Duration::zero();
    ++reordered_;
    return sim::Duration::nanos(rng_.uniformInt(1, max_extra_.ns()));
  });
}

void ReorderInjector::stop() {
  if (!active_) return;
  active_ = false;
  iface_->setReorderHook(nullptr);
}

sim::FaultTarget linkFaultTarget(LinkFault& link) {
  sim::FaultTarget target;
  target.down = [&link] { link.fail(); };
  target.up = [&link] { link.restore(); };
  return target;
}

sim::FaultTarget lossFaultTarget(LossInjector& loss) {
  sim::FaultTarget target;
  target.loss_start = [&loss](double p) { loss.start(p); };
  target.loss_stop = [&loss] { loss.stop(); };
  return target;
}

sim::FaultTarget corruptionFaultTarget(CorruptionInjector& corruption) {
  sim::FaultTarget target;
  target.loss_start = [&corruption](double p) { corruption.start(p); };
  target.loss_stop = [&corruption] { corruption.stop(); };
  return target;
}

sim::FaultTarget duplicateFaultTarget(DuplicateInjector& dup) {
  sim::FaultTarget target;
  target.loss_start = [&dup](double p) { dup.start(p); };
  target.loss_stop = [&dup] { dup.stop(); };
  return target;
}

sim::FaultTarget reorderFaultTarget(ReorderInjector& reorder) {
  sim::FaultTarget target;
  target.loss_start = [&reorder](double p) { reorder.start(p); };
  target.loss_stop = [&reorder] { reorder.stop(); };
  return target;
}

sim::FaultTarget partitionFaultTarget(PartitionFault& partition) {
  sim::FaultTarget target;
  target.down = [&partition] { partition.partition(); };
  target.up = [&partition] { partition.heal(); };
  return target;
}

}  // namespace mgq::net
