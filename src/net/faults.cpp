#include "net/faults.hpp"

#include <cassert>

namespace mgq::net {

LinkFault::LinkFault(Interface& a) : a_(&a), b_(a.peer()) {
  assert(b_ != nullptr && "LinkFault needs a connected interface");
}

LinkFault::LinkFault(Interface& a, Interface& b) : a_(&a), b_(&b) {
  assert(a.peer() == &b && b.peer() == &a &&
         "LinkFault endpoints must be peers");
}

void LinkFault::fail() {
  a_->setUp(false);
  b_->setUp(false);
}

void LinkFault::restore() {
  a_->setUp(true);
  b_->setUp(true);
}

LossInjector::LossInjector(Interface& iface, std::uint64_t seed)
    : iface_(&iface), rng_(seed) {}

LossInjector::~LossInjector() { stop(); }

void LossInjector::start(double drop_probability) {
  probability_ = drop_probability;
  if (active_) return;  // keep the hook; only the probability changed
  active_ = true;
  iface_->setLossHook([this](const Packet&) {
    if (!rng_.bernoulli(probability_)) return false;
    ++dropped_;
    return true;
  });
}

void LossInjector::stop() {
  if (!active_) return;
  active_ = false;
  iface_->setLossHook(nullptr);
}

sim::FaultTarget linkFaultTarget(LinkFault& link) {
  sim::FaultTarget target;
  target.down = [&link] { link.fail(); };
  target.up = [&link] { link.restore(); };
  return target;
}

sim::FaultTarget lossFaultTarget(LossInjector& loss) {
  sim::FaultTarget target;
  target.loss_start = [&loss](double p) { loss.start(p); };
  target.loss_stop = [&loss] { loss.stop(); };
  return target;
}

}  // namespace mgq::net
