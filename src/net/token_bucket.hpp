// Token bucket used for policing, marking, and shaping (paper §2, §4.3).
//
// Tokens are bytes; they accrue at `rate_bps / 8` bytes per second up to
// `depth_bytes`. The refill is computed lazily from the simulated clock,
// so no periodic events are needed.
//
// The paper's GARA DS module sizes the bucket as depth = bandwidth / D
// with divisor D = 40 ("normal") or 4 ("large", Table 1); helpers below
// encode that rule.
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace mgq::net {

struct TokenBucketStats {
  std::uint64_t conformed = 0;  // tryConsume granted
  std::uint64_t policed = 0;    // tryConsume refused (out of profile)
  std::uint64_t forced = 0;     // forceConsume calls
  std::uint64_t force_clamped = 0;  // forceConsume hit the debt floor
};

class TokenBucket {
 public:
  /// Creates a bucket refilling at `rate_bps` (bits/second) with capacity
  /// `depth_bytes`. The bucket starts full.
  TokenBucket(sim::Simulator& sim, double rate_bps, std::int64_t depth_bytes);

  /// Consumes `bytes` tokens if available; returns false (consuming
  /// nothing) when the packet is out of profile.
  bool tryConsume(std::int64_t bytes);

  /// Time until `bytes` tokens will be available (zero if already
  /// conformant) — used by shapers that delay rather than drop.
  sim::Duration timeUntilConformant(std::int64_t bytes);

  /// Unconditionally removes `bytes` tokens; used by shapers that have
  /// already committed to sending. The resulting debt is clamped at
  /// -depth_bytes: an out-of-profile burst can cost at most one bucket's
  /// worth of future conformance (depth/rate seconds), never unbounded
  /// starvation.
  void forceConsume(std::int64_t bytes);

  double rateBps() const { return rate_bps_; }
  std::int64_t depthBytes() const { return depth_bytes_; }
  /// Current token count after lazy refill.
  double tokens();

  /// Read-only view of the current token count: computes the lazy refill
  /// without committing it, so invariant monitors can observe the level
  /// (which must stay within [-depth, depth]) without perturbing state.
  double peekTokens() const;

  /// Reconfigures the bucket (e.g. when a reservation is modified). The
  /// current fill level is clamped to the new depth.
  void configure(double rate_bps, std::int64_t depth_bytes);

  const TokenBucketStats& stats() const { return stats_; }

  /// The paper's bucket-depth rule: depth = bandwidth / divisor, with the
  /// "normal" divisor 40 and "large" divisor 4 used in Table 1.
  static std::int64_t depthForRate(double rate_bps, double divisor);
  static constexpr double kNormalDivisor = 40.0;
  static constexpr double kLargeDivisor = 4.0;

 private:
  void refill();

  sim::Simulator& sim_;
  double rate_bps_;
  std::int64_t depth_bytes_;
  double tokens_;  // bytes; fractional to avoid rounding drift
  sim::TimePoint last_refill_;
  TokenBucketStats stats_;
};

}  // namespace mgq::net
