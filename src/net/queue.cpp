#include "net/queue.hpp"

#include <utility>

namespace mgq::net {

bool DropTailQueue::enqueue(Packet p) {
  if (p.size_bytes > capacity_bytes_) {
    ++stats_.dropped_oversize;
    stats_.bytes_dropped += p.size_bytes;
    return false;
  }
  if (bytes_ + p.size_bytes > capacity_bytes_) {
    ++stats_.dropped_overflow;
    stats_.bytes_dropped += p.size_bytes;
    return false;
  }
  bytes_ += p.size_bytes;
  ++stats_.enqueued;
  stats_.bytes_enqueued += p.size_bytes;
  items_.push_back(std::move(p));
  return true;
}

// GCC 12 reports a spurious -Wmaybe-uninitialized deep inside the variant
// move when the dequeued packet is wrapped into the optional return value
// (GCC bug 105593); the packet is always fully formed here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
std::optional<Packet> DropTailQueue::dequeue() {
  if (items_.empty()) return std::nullopt;
  Packet p = std::move(items_.front());
  items_.pop_front();
  bytes_ -= p.size_bytes;
  ++stats_.dequeued;
  return p;
}
#pragma GCC diagnostic pop

bool DropTailQueue::passThrough(const Packet& p) {
  // With the queue empty the overflow check degenerates to the oversize
  // check, so one comparison decides both drop counters.
  if (p.size_bytes > capacity_bytes_) {
    ++stats_.dropped_oversize;
    stats_.bytes_dropped += p.size_bytes;
    return false;
  }
  ++stats_.enqueued;
  stats_.bytes_enqueued += p.size_bytes;
  ++stats_.dequeued;
  return true;
}

std::string DropTailQueue::invariantError() const {
  std::int64_t sum = 0;
  for (const auto& p : items_) sum += p.size_bytes;
  if (bytes_ < 0) return "queue byte counter negative";
  if (bytes_ > capacity_bytes_) return "queue bytes exceed capacity";
  if (bytes_ != sum) return "queue byte counter out of sync with contents";
  return {};
}

DsQdisc::DsQdisc(std::int64_t ef_capacity, std::int64_t ll_capacity,
                 std::int64_t be_capacity)
    : queues_{DropTailQueue(be_capacity), DropTailQueue(ll_capacity),
              DropTailQueue(ef_capacity)} {}

DropTailQueue& DsQdisc::classQueueMutable(Dscp d) {
  return queues_[static_cast<std::size_t>(d)];
}

const DropTailQueue& DsQdisc::classQueue(Dscp d) const {
  return queues_[static_cast<std::size_t>(d)];
}

bool DsQdisc::enqueue(Packet p) {
  return classQueueMutable(p.dscp).enqueue(std::move(p));
}

bool DsQdisc::passThrough(const Packet& p) {
  return classQueueMutable(p.dscp).passThrough(p);
}

std::optional<Packet> DsQdisc::dequeue() {
  // Strict priority: EF, then LL, then BE. The empty() guard keeps idle
  // bands from constructing (and the caller from destroying) a disengaged
  // optional<Packet> apiece on every poll of the transmitter.
  for (Dscp d : {Dscp::kExpedited, Dscp::kLowLatency, Dscp::kBestEffort}) {
    auto& q = classQueueMutable(d);
    if (!q.empty()) return q.dequeue();
  }
  return std::nullopt;
}

bool DsQdisc::empty() const {
  return classQueue(Dscp::kExpedited).empty() &&
         classQueue(Dscp::kLowLatency).empty() &&
         classQueue(Dscp::kBestEffort).empty();
}

std::int64_t DsQdisc::bytes() const {
  return classQueue(Dscp::kExpedited).bytes() +
         classQueue(Dscp::kLowLatency).bytes() +
         classQueue(Dscp::kBestEffort).bytes();
}

}  // namespace mgq::net
