#include "net/router.hpp"

namespace mgq::net {

void Router::deliver(Packet p, Interface& in) {
  (void)in;
  Interface* out =
      p.flow.dst < routes_.size() ? routes_[p.flow.dst] : nullptr;
  if (out == nullptr) {
    ++stats_.no_route_drops;
    return;
  }
  ++stats_.forwarded;
  out->send(std::move(p));
}

}  // namespace mgq::net
