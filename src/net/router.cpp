#include "net/router.hpp"

namespace mgq::net {

void Router::deliver(Packet p, Interface& in) {
  (void)in;
  const auto it = routes_.find(p.flow.dst);
  if (it == routes_.end()) {
    ++stats_.no_route_drops;
    return;
  }
  ++stats_.forwarded;
  it->second->send(std::move(p));
}

}  // namespace mgq::net
