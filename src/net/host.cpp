#include "net/host.hpp"

#include <cassert>

namespace mgq::net {

Host::Host(sim::Simulator& sim, NodeId id, std::string name)
    : Node(sim, id, std::move(name)) {
  addInterface();
}

void Host::sendPacket(Packet p) {
  p.id = (static_cast<std::uint64_t>(id_) << 40) | next_packet_id_++;
  if (egress_policy_.hasRules()) {
    auto processed = egress_policy_.process(std::move(p));
    if (!processed) return;  // policed at the host edge
    p = std::move(*processed);
  } else {
    egress_policy_.countBypass();
  }
  ++stats_.sent_packets;
  if (p.flow.dst == id_) {
    // Loopback: deliver locally after a small fixed latency (scheduled, so
    // the caller never re-enters itself synchronously).
    loopback_.push_back(std::move(p));
    sim_.schedule(sim::Duration::micros(5), [this] { onLoopbackDelivery(); });
    return;
  }
  nic().send(std::move(p));
}

void Host::onLoopbackDelivery() {
  Packet pkt = std::move(loopback_.front());
  loopback_.pop_front();
  deliver(std::move(pkt), nic());
}

bool Host::bind(Protocol proto, PortId port, PacketReceiver* receiver) {
  assert(receiver != nullptr);
  return bindings_.emplace(portKey(proto, port), receiver).second;
}

void Host::unbind(Protocol proto, PortId port) {
  bindings_.erase(portKey(proto, port));
}

PortId Host::allocateEphemeralPort(Protocol proto) {
  // Scan from the cursor; wraps within the ephemeral range.
  for (int attempts = 0; attempts < 16384; ++attempts) {
    const PortId candidate = next_ephemeral_;
    next_ephemeral_ =
        next_ephemeral_ >= 65535 ? PortId{49152} : PortId(next_ephemeral_ + 1);
    if (bindings_.find(portKey(proto, candidate)) == bindings_.end()) {
      return candidate;
    }
  }
  assert(false && "ephemeral port space exhausted");
  return 0;
}

void Host::deliver(Packet p, Interface& in) {
  (void)in;
  ++stats_.received_packets;
  const auto it = bindings_.find(portKey(p.flow.proto, p.flow.dst_port));
  if (it == bindings_.end()) {
    ++stats_.no_listener_drops;
    return;
  }
  it->second->onPacket(std::move(p));
}

}  // namespace mgq::net
