#include "net/classifier.hpp"

#include <algorithm>

namespace mgq::net {

std::uint64_t DsPolicy::addRule(MarkingRule rule) {
  rule.rule_id = next_rule_id_++;
  rules_.push_back(std::move(rule));
  flow_cache_.clear();
  return rules_.back().rule_id;
}

bool DsPolicy::removeRule(std::uint64_t rule_id) {
  const auto before = rules_.size();
  std::erase_if(rules_,
                [rule_id](const MarkingRule& r) { return r.rule_id == rule_id; });
  if (rules_.size() != before) {
    flow_cache_.clear();
    return true;
  }
  return false;
}

void DsPolicy::clear() {
  rules_.clear();
  flow_cache_.clear();
}

std::optional<Packet> DsPolicy::applyRule(std::size_t index, Packet p) {
  auto& rule = rules_[index];
  if (!rule.bucket || rule.bucket->tryConsume(p.size_bytes)) {
    p.dscp = rule.mark;
    ++stats_.marked;
    return p;
  }
  // Out of profile.
  if (rule.out_action == OutOfProfileAction::kDemote) {
    p.dscp = Dscp::kBestEffort;
    ++stats_.demoted;
    return p;
  }
  ++stats_.policed_drops;
  return std::nullopt;
}

std::optional<Packet> DsPolicy::process(Packet p) {
  ++stats_.classified;
  // No rules (hosts without marking, interior routers): nothing to match
  // and nothing worth caching.
  if (rules_.empty()) return p;

  if (const auto it = flow_cache_.find(p.flow); it != flow_cache_.end()) {
    ++stats_.cache_hits;
    if (it->second == kNoRule) return p;
    return applyRule(it->second, std::move(p));
  }

  ++stats_.cache_misses;
  if (flow_cache_.size() >= kMaxCachedFlows) flow_cache_.clear();
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (!rules_[i].match.matches(p.flow)) continue;
    flow_cache_.emplace(p.flow, i);
    return applyRule(i, std::move(p));
  }
  // No rule: leave marking untouched (interior routers trust edges; hosts
  // send best-effort unless their own policy marks).
  flow_cache_.emplace(p.flow, kNoRule);
  return p;
}

}  // namespace mgq::net
