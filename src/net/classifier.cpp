#include "net/classifier.hpp"

#include <algorithm>

namespace mgq::net {

std::uint64_t DsPolicy::addRule(MarkingRule rule) {
  rule.rule_id = next_rule_id_++;
  rules_.push_back(std::move(rule));
  return rules_.back().rule_id;
}

bool DsPolicy::removeRule(std::uint64_t rule_id) {
  const auto before = rules_.size();
  std::erase_if(rules_,
                [rule_id](const MarkingRule& r) { return r.rule_id == rule_id; });
  return rules_.size() != before;
}

void DsPolicy::clear() { rules_.clear(); }

std::optional<Packet> DsPolicy::process(Packet p) {
  ++stats_.classified;
  for (auto& rule : rules_) {
    if (!rule.match.matches(p.flow)) continue;
    if (!rule.bucket || rule.bucket->tryConsume(p.size_bytes)) {
      p.dscp = rule.mark;
      ++stats_.marked;
      return p;
    }
    // Out of profile.
    if (rule.out_action == OutOfProfileAction::kDemote) {
      p.dscp = Dscp::kBestEffort;
      ++stats_.demoted;
      return p;
    }
    ++stats_.policed_drops;
    return std::nullopt;
  }
  // No rule: leave marking untouched (interior routers trust edges; hosts
  // send best-effort unless their own policy marks).
  return p;
}

}  // namespace mgq::net
