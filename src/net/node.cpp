#include "net/node.hpp"

#include <cassert>
#include <utility>

namespace mgq::net {

namespace {

bool carriesPayload(const Packet& p) {
  if (const auto* t = p.tcp()) return !t->payload.empty();
  if (const auto* u = p.udp()) return !u->payload.empty();
  return false;
}

}  // namespace

Interface::Interface(sim::Simulator& sim, Node& owner, std::string name,
                     const QdiscConfig& qdisc)
    : sim_(sim),
      owner_(owner),
      name_(std::move(name)),
      pool_(&BufferPool::local()),
      qdisc_(qdisc.ef_capacity_bytes, qdisc.ll_capacity_bytes,
             qdisc.be_capacity_bytes) {}

void Interface::connect(Interface& peer, double rate_bps,
                        sim::Duration delay) {
  assert(peer_ == nullptr && "interface already connected");
  peer_ = &peer;
  rate_bps_ = rate_bps;
  delay_ = delay;
}

void Interface::send(Packet p) {
  assert(connected() && "sending on an unconnected interface");
  // Pool-pressure shedding: when the thread's payload pool sits at its
  // live-bytes ceiling, payload-bearing packets are dropped at admission
  // instead of queued — the drop releases their buffer refs, which is
  // what actually relieves the pressure, and transports recover through
  // ordinary retransmission. Header-only packets (ACKs, SYN/FIN, probes)
  // always pass, so the feedback that drains the pool keeps flowing.
  // Inactive (one predictable branch) when no ceiling is configured.
  if (pool_->underPressure() && carriesPayload(p)) {
    ++stats_.drops_pool_pressure;
    return;
  }
  p.enqueued_at = sim_.now();
  // Idle transmitter, nothing queued: the packet would be dequeued again
  // immediately, so skip the deque round-trip. passThrough keeps the
  // queue counters exactly as enqueue()+dequeue() would have left them.
  if (!transmitting_ && up_ && qdisc_.empty()) {
    if (!qdisc_.passThrough(p)) {
      ++stats_.drops_overflow;
      return;
    }
    transmitting_ = true;
    startTransmit(std::move(p));
    return;
  }
  // A down interface still queues (the device buffer persists across the
  // outage); transmission resumes on setUp(true).
  if (!qdisc_.enqueue(std::move(p))) {
    ++stats_.drops_overflow;
    return;
  }
  if (!transmitting_ && up_) {
    transmitting_ = true;
    transmitNext();
  }
}

void Interface::setUp(bool up) {
  if (up_ == up) return;
  up_ = up;
  for (const auto& observer : link_observers_) observer(*this, up_);
  if (up_ && !transmitting_) {
    transmitting_ = true;
    transmitNext();
  }
}

void Interface::transmitNext() {
  if (!up_) {
    transmitting_ = false;
    return;
  }
  auto next = qdisc_.dequeue();
  if (!next) {
    transmitting_ = false;
    return;
  }
  startTransmit(std::move(*next));
}

void Interface::startTransmit(Packet p) {
  const auto tx_time = sim::transmissionTime(p.size_bytes, rate_bps_);
  ++stats_.tx_packets;
  stats_.tx_bytes += p.size_bytes;
  tx_packet_ = std::move(p);
  sim_.schedule(tx_time, [this] { onSerialized(); });
}

// Serialization complete: the packet propagates to the peer and the
// transmitter moves on to the next queued packet. An injected loss
// episode eats the packet on the wire: bandwidth spent, nothing arrives.
// The propagation event is scheduled before the next transmission starts,
// preserving the exact event order of the pre-pool data plane. The
// adversarial hooks (partition, corrupt, duplicate, reorder) are all null
// or false by default, so an unhooked interface schedules the exact same
// events as before they existed.
void Interface::onSerialized() {
  Packet& pkt = *tx_packet_;
  if (loss_hook_ && loss_hook_(pkt)) {
    ++stats_.drops_fault;
  } else if (partitioned_) {
    ++stats_.drops_partition;
  } else {
    if (corrupt_hook_ && corrupt_hook_(pkt)) ++stats_.corrupted;
    std::optional<Packet> clone;
    if (duplicate_hook_ && duplicate_hook_(pkt)) {
      ++stats_.duplicated;
      clone = pkt;  // shares the payload slice — refcount bump, no copy
    }
    const auto extra =
        reorder_hook_ ? reorder_hook_(pkt) : sim::Duration::zero();
    if (extra > sim::Duration::zero()) {
      ++stats_.reordered;
      const auto id = delayed_seq_++;
      delayed_wire_.emplace(id, std::move(pkt));
      sim_.schedule(delay_ + extra, [this, id] { onDelayedPropagated(id); });
    } else {
      propagate(std::move(pkt));
    }
    if (clone) propagate(std::move(*clone));
  }
  tx_packet_.reset();
  transmitNext();
}

void Interface::propagate(Packet p) {
  wire_.push_back(std::move(p));
  sim_.schedule(delay_, [this] { onPropagated(); });
}

void Interface::onPropagated() {
  peer_->receive(std::move(wire_.front()));
  wire_.pop_front();
}

void Interface::onDelayedPropagated(std::uint64_t id) {
  auto it = delayed_wire_.find(id);
  if (it == delayed_wire_.end()) return;
  Packet p = std::move(it->second);
  delayed_wire_.erase(it);
  peer_->receive(std::move(p));
}

void Interface::receive(Packet p) {
  // Packets in flight towards a down interface are lost at the wire.
  if (!up_) {
    ++stats_.drops_link_down;
    return;
  }
  ++stats_.rx_packets;
  stats_.rx_bytes += p.size_bytes;
  if (!ingress_policy_.hasRules()) {
    ingress_policy_.countBypass();
    owner_.deliver(std::move(p), *this);
    return;
  }
  auto processed = ingress_policy_.process(std::move(p));
  if (!processed) {
    ++stats_.drops_policed;
    return;
  }
  owner_.deliver(std::move(*processed), *this);
}

Interface& Node::addInterface(const QdiscConfig& qdisc) {
  const auto index = interfaces_.size();
  interfaces_.push_back(std::make_unique<Interface>(
      sim_, *this, name_ + "/if" + std::to_string(index), qdisc));
  return *interfaces_.back();
}

}  // namespace mgq::net
