#include "net/packet.hpp"

namespace mgq::net {

const char* dscpName(Dscp d) {
  switch (d) {
    case Dscp::kBestEffort:
      return "BE";
    case Dscp::kLowLatency:
      return "LL";
    case Dscp::kExpedited:
      return "EF";
  }
  return "?";
}

const char* dropReasonName(DropReason r) {
  switch (r) {
    case DropReason::kQueueOverflow:
      return "queue-overflow";
    case DropReason::kPoliced:
      return "policed";
    case DropReason::kNoRoute:
      return "no-route";
    case DropReason::kNoListener:
      return "no-listener";
  }
  return "?";
}

}  // namespace mgq::net
