#include "net/packet.hpp"

#include <cstring>

namespace mgq::net {

namespace {

/// splitmix64 finalizer — same mixer FlowKeyHash uses.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint32_t tcpWireChecksum(const TcpHeader& h) {
  std::uint64_t acc = mix64(h.seq) ^ mix64(~h.ack);
  acc ^= mix64((static_cast<std::uint64_t>(h.window) << 3) |
               (static_cast<std::uint64_t>(h.syn) << 2) |
               (static_cast<std::uint64_t>(h.fin) << 1) |
               static_cast<std::uint64_t>(h.is_ack));
  const std::uint8_t* p = h.payload.empty() ? nullptr : h.payload.data();
  std::size_t n = h.payload.size();
  std::uint64_t sum = 0x100000001b3ull;
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    sum = (sum ^ w) * 0x100000001b3ull;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t w = 0;
    std::memcpy(&w, p, n);
    sum = (sum ^ w ^ (static_cast<std::uint64_t>(n) << 56)) *
          0x100000001b3ull;
  }
  acc ^= mix64(sum ^ h.payload.size());
  return static_cast<std::uint32_t>(acc ^ (acc >> 32));
}

const char* dscpName(Dscp d) {
  switch (d) {
    case Dscp::kBestEffort:
      return "BE";
    case Dscp::kLowLatency:
      return "LL";
    case Dscp::kExpedited:
      return "EF";
  }
  return "?";
}

const char* dropReasonName(DropReason r) {
  switch (r) {
    case DropReason::kQueueOverflow:
      return "queue-overflow";
    case DropReason::kPoliced:
      return "policed";
    case DropReason::kNoRoute:
      return "no-route";
    case DropReason::kNoListener:
      return "no-listener";
  }
  return "?";
}

}  // namespace mgq::net
