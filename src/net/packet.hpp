// Packet model. A packet carries a flow key (simulated 5-tuple), a DSCP
// code point, its wire size, and a protocol-specific header. Payload bytes
// are carried as pooled buffer slices (net/buffer.hpp), so forwarding a
// packet across layers shares the bytes instead of deep-copying them,
// while transports can still verify end-to-end stream integrity under
// loss.
#pragma once

#include <cstdint>
#include <functional>
#include <variant>

#include "net/buffer.hpp"
#include "sim/time.hpp"

namespace mgq::net {

using NodeId = std::uint32_t;
using PortId = std::uint16_t;

inline constexpr NodeId kInvalidNode = 0xffffffff;

/// Differentiated-services code points used in this library. kExpedited is
/// the EF PHB (premium service); kLowLatency is a second elevated class the
/// paper proposes for small-message MPI traffic; kBestEffort is default.
enum class Dscp : std::uint8_t {
  kBestEffort = 0,
  kLowLatency = 1,
  kExpedited = 2,
};

const char* dscpName(Dscp d);

enum class Protocol : std::uint8_t { kTcp = 0, kUdp = 1 };

/// Simulated 5-tuple identifying a transport flow.
struct FlowKey {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  PortId src_port = 0;
  PortId dst_port = 0;
  Protocol proto = Protocol::kTcp;

  bool operator==(const FlowKey&) const = default;

  /// The same flow viewed from the other endpoint.
  FlowKey reversed() const {
    return FlowKey{dst, src, dst_port, src_port, proto};
  }
};

struct FlowKeyHash {
  /// splitmix64 finalizer: every input bit avalanches into every output
  /// bit, so flows differing only in a few low port bits spread evenly
  /// (the old multiply-xor mixer clustered them into adjacent buckets).
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::size_t operator()(const FlowKey& k) const {
    std::uint64_t h = mix((static_cast<std::uint64_t>(k.src) << 32) | k.dst);
    h = mix(h ^ (static_cast<std::uint64_t>(k.src_port) << 17) ^
            (static_cast<std::uint64_t>(k.dst_port) << 1) ^
            static_cast<std::uint64_t>(k.proto));
    return static_cast<std::size_t>(h);
  }
};

/// TCP segment metadata. `seq` is the stream offset of the first payload
/// byte; `payload` is a shared view of the actual bytes (empty — and
/// allocation-free — for pure ACKs).
struct TcpHeader {
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint32_t window = 0;   // advertised receive window, bytes
  std::uint32_t checksum = 0; // wire checksum over header fields + payload
  bool syn = false;
  bool fin = false;
  bool is_ack = false;
  BufSlice payload;
};

/// Wire checksum over a TCP segment's header fields (seq, ack, window,
/// flags) and payload bytes — everything a fault injector may flip. The
/// `checksum` field itself is excluded. Word-at-a-time multiply-xor with a
/// splitmix finalizer: any single bit flip avalanches into the result, and
/// bulk throughput stays ~8 bytes/cycle so the per-segment cost is noise
/// against the copy the payload already paid. Stamped by the sender at
/// segment emission, verified at receive (see tcp/tcp_socket.cpp).
std::uint32_t tcpWireChecksum(const TcpHeader& h);

/// UDP datagram metadata. Contention traffic is size-only (`payload`
/// empty); applications that carry real bytes attach a slice, shared
/// across fragments of the same datagram.
struct UdpHeader {
  std::uint64_t datagram_id = 0;
  BufSlice payload;
};

inline constexpr std::int32_t kIpHeaderBytes = 20;
inline constexpr std::int32_t kTcpHeaderBytes = 20;
inline constexpr std::int32_t kUdpHeaderBytes = 8;

struct Packet {
  FlowKey flow;
  Dscp dscp = Dscp::kBestEffort;
  std::int32_t size_bytes = 0;  // on-the-wire size including headers
  std::uint64_t id = 0;         // unique per simulation, for tracing
  sim::TimePoint enqueued_at;   // stamped when first transmitted
  std::variant<std::monostate, TcpHeader, UdpHeader> header;

  const TcpHeader* tcp() const { return std::get_if<TcpHeader>(&header); }
  TcpHeader* tcp() { return std::get_if<TcpHeader>(&header); }
  const UdpHeader* udp() const { return std::get_if<UdpHeader>(&header); }
};

/// Why a packet was dropped — used by counters and tests.
enum class DropReason {
  kQueueOverflow,
  kPoliced,        // out-of-profile premium traffic at an edge policer
  kNoRoute,
  kNoListener,
};

const char* dropReasonName(DropReason r);

}  // namespace mgq::net
