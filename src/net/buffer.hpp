// Pooled, refcounted payload buffers and the cheap slice views that the
// data plane passes between layers.
//
// A Buffer is a single heap block: an intrusive header followed by its
// bytes. BufferRef is the owning handle (copy = refcount bump, non-atomic
// — a Simulator and everything it drives runs confined to one thread, and
// each thread has its own pool). BufSlice is a {buffer, offset, length}
// view: packets, ring-buffer chunks and retransmissions all share the same
// underlying bytes, so forwarding a payload across a hop costs a pointer
// copy and a refcount bump instead of a vector deep-copy.
//
// BufferPool::local() hands out buffers from per-size-class free lists.
// A buffer released on the thread that owns its pool is recycled; one
// released elsewhere (rare: cross-thread teardown) is freed to the heap.
// The pool keeps live/high-water counters per thread plus one global
// atomic live count, so multi-threaded chaos sweeps can assert that a
// whole batch leaked nothing.
//
// Ownership rule: bytes inside a slice's [offset, offset+length) window
// are immutable for the slice's lifetime. Producers may keep appending to
// the *tail* of a buffer they exclusively grow (the ring does this), but
// must never rewrite bytes a slice can already see.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <utility>

namespace mgq::net {

class BufferPool;

/// Intrusive header; the payload bytes follow the struct in the same
/// allocation. Never constructed directly — see BufferPool::allocate().
class Buffer {
 public:
  std::uint8_t* data() { return reinterpret_cast<std::uint8_t*>(this + 1); }
  const std::uint8_t* data() const {
    return reinterpret_cast<const std::uint8_t*>(this + 1);
  }
  std::uint32_t capacity() const { return capacity_; }

 private:
  friend class BufferPool;
  friend class BufferRef;

  std::uint32_t refs_ = 0;
  std::uint32_t capacity_ = 0;
  std::int8_t size_class_ = -1;  // -1: exact-size, never recycled
  BufferPool* owner_ = nullptr;
  Buffer* next_free_ = nullptr;  // free-list link while pooled

  void release();
};

/// Owning handle to a pooled buffer. Copyable (refcount bump), movable.
class BufferRef {
 public:
  BufferRef() = default;
  explicit BufferRef(Buffer* b) : b_(b) {
    if (b_ != nullptr) ++b_->refs_;
  }
  BufferRef(const BufferRef& o) : b_(o.b_) {
    if (b_ != nullptr) ++b_->refs_;
  }
  BufferRef(BufferRef&& o) noexcept : b_(std::exchange(o.b_, nullptr)) {}
  BufferRef& operator=(const BufferRef& o) {
    if (this != &o) {
      reset();
      b_ = o.b_;
      if (b_ != nullptr) ++b_->refs_;
    }
    return *this;
  }
  BufferRef& operator=(BufferRef&& o) noexcept {
    if (this != &o) {
      reset();
      b_ = std::exchange(o.b_, nullptr);
    }
    return *this;
  }
  ~BufferRef() { reset(); }

  void reset() {
    if (b_ != nullptr) {
      b_->release();
      b_ = nullptr;
    }
  }

  Buffer* get() const { return b_; }
  Buffer* operator->() const { return b_; }
  explicit operator bool() const { return b_ != nullptr; }

 private:
  Buffer* b_ = nullptr;
};

/// Cheap view over a window of a pooled buffer. Copying a slice bumps the
/// buffer refcount; the bytes themselves are shared and immutable.
struct BufSlice {
  BufferRef buffer;
  std::uint32_t offset = 0;
  std::uint32_t length = 0;

  bool empty() const { return length == 0; }
  std::size_t size() const { return length; }
  const std::uint8_t* data() const { return buffer->data() + offset; }
  const std::uint8_t& operator[](std::size_t i) const { return data()[i]; }
  std::span<const std::uint8_t> span() const { return {data(), length}; }

  /// A narrower window into the same bytes (no copy).
  BufSlice subslice(std::uint32_t off, std::uint32_t len) const {
    return BufSlice{buffer, offset + off, len};
  }

  /// Pool-backed slice holding a copy of `bytes`.
  static BufSlice copyOf(std::span<const std::uint8_t> bytes);
  /// Pool-backed slice of `n` bytes all equal to `value`.
  static BufSlice fill(std::size_t n, std::uint8_t value);
};

struct BufferPoolStats {
  std::uint64_t allocations = 0;   // allocate() calls
  std::uint64_t fresh = 0;         // served by operator new, not a free list
  std::uint64_t recycled = 0;      // buffers returned to a free list
  std::size_t live = 0;            // currently referenced buffers
  std::size_t high_water = 0;      // max simultaneous live buffers
  std::int64_t live_bytes = 0;     // capacity of currently live buffers
  std::int64_t high_water_bytes = 0;
  std::uint64_t ceiling_rejections = 0;  // tryAllocate() refused by ceiling
};

/// Thread-local pool of size-classed buffers (256 B … 64 KB; larger
/// requests get exact-size heap buffers that are freed, not recycled).
class BufferPool {
 public:
  static constexpr std::size_t kClassSizes[] = {256, 1024, 4096, 16384,
                                                65536};
  static constexpr int kNumClasses = 5;
  /// Free buffers kept per class; beyond this, releases free to the heap.
  static constexpr std::size_t kMaxFreePerClass = 64;

  /// The calling thread's pool.
  static BufferPool& local();

  /// Buffers currently live (allocated, not yet fully released) across
  /// every thread's pool. Zero means no payload memory is held anywhere.
  static std::int64_t totalLive();

  /// Capacity bytes of those live buffers, across every thread's pool.
  static std::int64_t totalLiveBytes();

  BufferRef allocate(std::size_t capacity);

  /// Ceiling-respecting allocation: returns an empty ref (and counts a
  /// ceiling_rejection) when a live-bytes ceiling is set and the rounded
  /// class size would push this pool past it. Shed-able producers (qdisc
  /// admission, fault-injector copies, send-side staging) use this and
  /// degrade gracefully; correctness-critical paths (reassembly views,
  /// ring gathers of bytes already admitted) keep using allocate(), which
  /// never fails — so the ceiling throttles intake without wedging
  /// in-flight data.
  BufferRef tryAllocate(std::size_t capacity);

  /// Per-thread live-bytes ceiling for tryAllocate(); 0 disables it. The
  /// ceiling is advisory pressure, not a hard cap: allocate() ignores it.
  void setLiveBytesCeiling(std::int64_t bytes) { ceiling_bytes_ = bytes; }
  std::int64_t liveBytesCeiling() const { return ceiling_bytes_; }

  /// True when a ceiling is set and live bytes sit at or above it —
  /// producers that can shed load should. (Live-bytes accounting, like
  /// the per-pool live counter, is only exact on the owning thread:
  /// cross-thread releases skip it by design.)
  bool underPressure() const {
    return ceiling_bytes_ > 0 && stats_.live_bytes >= ceiling_bytes_;
  }

  const BufferPoolStats& stats() const { return stats_; }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

 private:
  friend class Buffer;

  BufferPool();
  ~BufferPool();

  bool ownsCurrentThread() const;
  void recycleOrFree(Buffer* b);
  static void destroy(Buffer* b);
  static Buffer* create(std::size_t capacity, std::int8_t size_class,
                        BufferPool* owner);
  static std::int8_t classFor(std::size_t capacity);

  Buffer* free_lists_[kNumClasses] = {};
  std::size_t free_counts_[kNumClasses] = {};
  std::int64_t ceiling_bytes_ = 0;  // 0: no ceiling
  BufferPoolStats stats_;
};

inline BufSlice BufSlice::copyOf(std::span<const std::uint8_t> bytes) {
  BufSlice s;
  if (bytes.empty()) return s;
  s.buffer = BufferPool::local().allocate(bytes.size());
  s.length = static_cast<std::uint32_t>(bytes.size());
  std::memcpy(s.buffer->data(), bytes.data(), bytes.size());
  return s;
}

inline BufSlice BufSlice::fill(std::size_t n, std::uint8_t value) {
  BufSlice s;
  if (n == 0) return s;
  s.buffer = BufferPool::local().allocate(n);
  s.length = static_cast<std::uint32_t>(n);
  std::memset(s.buffer->data(), value, n);
  return s;
}

}  // namespace mgq::net
