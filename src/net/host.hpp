// Host: an end system with one network attachment, a transport demux
// (port-based), an optional egress marking policy, and an optional CPU
// scheduler hook (used by the DSRT experiments — sending costs cycles).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "net/node.hpp"

namespace mgq::cpu {
class CpuScheduler;
}

namespace mgq::net {

/// Implemented by transports (TCP connections, UDP sockets) to receive
/// packets addressed to their bound port.
class PacketReceiver {
 public:
  virtual ~PacketReceiver() = default;
  virtual void onPacket(Packet p) = 0;
};

struct HostStats {
  std::uint64_t sent_packets = 0;
  std::uint64_t received_packets = 0;
  std::uint64_t no_listener_drops = 0;
};

class Host : public Node {
 public:
  Host(sim::Simulator& sim, NodeId id, std::string name);

  /// The single network attachment (created at construction).
  Interface& nic() { return *interfaces_.front(); }

  /// Sends a packet out the NIC. Applies the optional egress policy
  /// (host-level marking) first; stamps a unique packet id.
  void sendPacket(Packet p);

  /// Binds a transport endpoint; packets for (proto, port) are delivered
  /// to it. Returns false if the port is taken.
  bool bind(Protocol proto, PortId port, PacketReceiver* receiver);
  void unbind(Protocol proto, PortId port);

  /// Allocates an ephemeral port (49152+) free for `proto`.
  PortId allocateEphemeralPort(Protocol proto);

  void deliver(Packet p, Interface& in) override;

  DsPolicy& egressPolicy() { return egress_policy_; }
  const HostStats& stats() const { return stats_; }

  /// Optional CPU attached to this host (null when CPU is not modelled).
  cpu::CpuScheduler* cpuScheduler() { return cpu_; }
  void attachCpu(cpu::CpuScheduler* cpu) { cpu_ = cpu; }

 private:
  static std::uint64_t portKey(Protocol proto, PortId port) {
    return (static_cast<std::uint64_t>(proto) << 16) | port;
  }

  void onLoopbackDelivery();

  std::unordered_map<std::uint64_t, PacketReceiver*> bindings_;
  // Loopback packets awaiting their fixed-latency delivery event; the
  // event captures only `this` (FIFO — the delay is constant).
  std::deque<Packet> loopback_;
  DsPolicy egress_policy_;
  HostStats stats_;
  PortId next_ephemeral_ = 49152;
  std::uint64_t next_packet_id_ = 1;
  cpu::CpuScheduler* cpu_ = nullptr;
};

}  // namespace mgq::net
