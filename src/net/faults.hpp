// Network fault primitives (companions to sim/fault_injector.hpp).
//
// LinkFault takes both directions of a point-to-point link down and up:
// queued packets are held, in-flight packets are lost, and every
// registered link-state observer (e.g. a NetworkResourceManager watching
// its enforcement edge) is notified — that is how a link flap turns into
// a reservation failure upstream.
//
// LossInjector models a lossy-wire episode on one egress direction with
// its own seeded Rng, so loss patterns replay exactly for a given seed
// regardless of other traffic.
#pragma once

#include <cstdint>

#include "net/node.hpp"
#include "sim/fault_injector.hpp"
#include "sim/random.hpp"

namespace mgq::net {

/// Both directions of one link, failed and restored as a unit.
class LinkFault {
 public:
  /// `a` must be connected; the reverse direction is its peer.
  explicit LinkFault(Interface& a);
  LinkFault(Interface& a, Interface& b);

  void fail();
  void restore();
  bool failed() const { return !a_->isUp() || !b_->isUp(); }

  Interface& forward() { return *a_; }
  Interface& reverse() { return *b_; }

 private:
  Interface* a_;
  Interface* b_;
};

/// Seeded Bernoulli packet loss on one interface's egress wire.
class LossInjector {
 public:
  LossInjector(Interface& iface, std::uint64_t seed);
  ~LossInjector();
  LossInjector(const LossInjector&) = delete;
  LossInjector& operator=(const LossInjector&) = delete;

  /// Begins (or re-parameterizes) an episode dropping each packet with
  /// probability `drop_probability`.
  void start(double drop_probability);
  void stop();

  bool active() const { return active_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  Interface* iface_;
  sim::Rng rng_;
  double probability_ = 0.0;
  bool active_ = false;
  std::uint64_t dropped_ = 0;
};

/// Seeded single-bit corruption on one interface's egress wire. Only TCP
/// segments are touched — they carry the wire checksum that lets the
/// receiver detect the damage, so a corrupted segment is dropped and
/// counted instead of delivered (UDP contention traffic is size-only and
/// has no integrity cover; corrupting it would silently hand garbage to
/// the application, which is exactly the failure mode this layer exists
/// to rule out). Payload-bearing segments get copy-on-corrupt: the
/// injector clones the payload into a fresh pooled buffer, flips one
/// seeded bit there, and swaps the slice — the original bytes stay
/// immutable for every other slice sharing them (retransmission queues,
/// duplicate clones). Payload-less segments get a seeded header-field
/// flip instead. When the pool is at its live-bytes ceiling the copy is
/// skipped and counted, not forced.
class CorruptionInjector {
 public:
  CorruptionInjector(Interface& iface, std::uint64_t seed);
  ~CorruptionInjector();
  CorruptionInjector(const CorruptionInjector&) = delete;
  CorruptionInjector& operator=(const CorruptionInjector&) = delete;

  /// Begins (or re-parameterizes) an episode corrupting each eligible
  /// packet with probability `corrupt_probability`.
  void start(double corrupt_probability);
  void stop();

  bool active() const { return active_; }
  std::uint64_t corrupted() const { return corrupted_; }
  /// Packets the episode selected but could not corrupt (non-TCP, or the
  /// copy-on-corrupt allocation was rejected by the pool ceiling).
  std::uint64_t skipped() const { return skipped_; }

 private:
  bool corrupt(Packet& p);

  Interface* iface_;
  sim::Rng rng_;
  double probability_ = 0.0;
  bool active_ = false;
  std::uint64_t corrupted_ = 0;
  std::uint64_t skipped_ = 0;
};

/// Seeded Bernoulli duplication on one interface's egress wire: a
/// selected packet propagates twice (the clone shares the original's
/// payload buffers — see Interface::setDuplicateHook).
class DuplicateInjector {
 public:
  DuplicateInjector(Interface& iface, std::uint64_t seed);
  ~DuplicateInjector();
  DuplicateInjector(const DuplicateInjector&) = delete;
  DuplicateInjector& operator=(const DuplicateInjector&) = delete;

  void start(double duplicate_probability);
  void stop();

  bool active() const { return active_; }
  std::uint64_t duplicated() const { return duplicated_; }

 private:
  Interface* iface_;
  sim::Rng rng_;
  double probability_ = 0.0;
  bool active_ = false;
  std::uint64_t duplicated_ = 0;
};

/// Seeded Bernoulli reordering on one interface's egress wire: a selected
/// packet is held back a uniform extra delay in (0, max_extra], letting
/// later packets overtake it. Delivery still lands under the kernel's
/// `(at, seq)` total order, so a given seed replays the exact same
/// interleaving.
class ReorderInjector {
 public:
  ReorderInjector(Interface& iface, std::uint64_t seed,
                  sim::Duration max_extra = sim::Duration::millis(5));
  ~ReorderInjector();
  ReorderInjector(const ReorderInjector&) = delete;
  ReorderInjector& operator=(const ReorderInjector&) = delete;

  void start(double reorder_probability);
  void stop();

  bool active() const { return active_; }
  std::uint64_t reordered() const { return reordered_; }
  sim::Duration maxExtraDelay() const { return max_extra_; }

 private:
  Interface* iface_;
  sim::Rng rng_;
  sim::Duration max_extra_;
  double probability_ = 0.0;
  bool active_ = false;
  std::uint64_t reordered_ = 0;
};

/// Directional link blackhole with heal. While partitioned, the wrapped
/// interface's egress traffic burns serialization bandwidth but never
/// arrives (a path silently eating packets), and the reverse direction
/// keeps flowing — the classic asymmetric partition. Partition the peer's
/// own PartitionFault too for a full cut.
class PartitionFault {
 public:
  explicit PartitionFault(Interface& iface) : iface_(&iface) {}
  ~PartitionFault() { heal(); }
  PartitionFault(const PartitionFault&) = delete;
  PartitionFault& operator=(const PartitionFault&) = delete;

  void partition() { iface_->setPartitioned(true); }
  void heal() { iface_->setPartitioned(false); }
  bool partitioned() const { return iface_->isPartitioned(); }
  std::uint64_t blackholed() const {
    return iface_->stats().drops_partition;
  }

 private:
  Interface* iface_;
};

/// Adapters exposing these primitives as fault-injector targets. The
/// referenced objects must outlive the injector's schedule. Episode-style
/// injectors (loss, corruption, duplication, reorder) map to the
/// loss_start/loss_stop action pair; binary faults (link, partition) map
/// to down/up.
sim::FaultTarget linkFaultTarget(LinkFault& link);
sim::FaultTarget lossFaultTarget(LossInjector& loss);
sim::FaultTarget corruptionFaultTarget(CorruptionInjector& corruption);
sim::FaultTarget duplicateFaultTarget(DuplicateInjector& dup);
sim::FaultTarget reorderFaultTarget(ReorderInjector& reorder);
sim::FaultTarget partitionFaultTarget(PartitionFault& partition);

}  // namespace mgq::net
