// Network fault primitives (companions to sim/fault_injector.hpp).
//
// LinkFault takes both directions of a point-to-point link down and up:
// queued packets are held, in-flight packets are lost, and every
// registered link-state observer (e.g. a NetworkResourceManager watching
// its enforcement edge) is notified — that is how a link flap turns into
// a reservation failure upstream.
//
// LossInjector models a lossy-wire episode on one egress direction with
// its own seeded Rng, so loss patterns replay exactly for a given seed
// regardless of other traffic.
#pragma once

#include <cstdint>

#include "net/node.hpp"
#include "sim/fault_injector.hpp"
#include "sim/random.hpp"

namespace mgq::net {

/// Both directions of one link, failed and restored as a unit.
class LinkFault {
 public:
  /// `a` must be connected; the reverse direction is its peer.
  explicit LinkFault(Interface& a);
  LinkFault(Interface& a, Interface& b);

  void fail();
  void restore();
  bool failed() const { return !a_->isUp() || !b_->isUp(); }

  Interface& forward() { return *a_; }
  Interface& reverse() { return *b_; }

 private:
  Interface* a_;
  Interface* b_;
};

/// Seeded Bernoulli packet loss on one interface's egress wire.
class LossInjector {
 public:
  LossInjector(Interface& iface, std::uint64_t seed);
  ~LossInjector();
  LossInjector(const LossInjector&) = delete;
  LossInjector& operator=(const LossInjector&) = delete;

  /// Begins (or re-parameterizes) an episode dropping each packet with
  /// probability `drop_probability`.
  void start(double drop_probability);
  void stop();

  bool active() const { return active_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  Interface* iface_;
  sim::Rng rng_;
  double probability_ = 0.0;
  bool active_ = false;
  std::uint64_t dropped_ = 0;
};

/// Adapters exposing these primitives as fault-injector targets. The
/// referenced objects must outlive the injector's schedule.
sim::FaultTarget linkFaultTarget(LinkFault& link);
sim::FaultTarget lossFaultTarget(LossInjector& loss);

}  // namespace mgq::net
