// Egress queueing disciplines.
//
// DropTailQueue: FIFO bounded by bytes; overflowing packets are dropped.
// DsQdisc: the paper's router egress discipline — strict priority across
// the EF (expedited), LL (low-latency) and BE (best-effort) classes, each
// class itself a bounded FIFO. All EF packets are sent before any LL
// packet, and all LL before any BE (paper §5.1 "Priority Queuing ... all
// packets associated with reservations are sent before any other
// packets").
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "net/packet.hpp"

namespace mgq::net {

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  /// Packet did not fit on top of the current backlog.
  std::uint64_t dropped_overflow = 0;
  /// Packet is larger than the queue capacity itself — it would be dropped
  /// even on an empty queue. Kept separate from overflow so exported drop
  /// stats distinguish congestion from misconfiguration (MTU vs capacity).
  std::uint64_t dropped_oversize = 0;
  std::int64_t bytes_enqueued = 0;
  std::int64_t bytes_dropped = 0;
};

class DropTailQueue {
 public:
  explicit DropTailQueue(std::int64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Returns false (and drops) when the packet does not fit.
  bool enqueue(Packet p);
  std::optional<Packet> dequeue();

  /// Idle-transmitter bypass: performs exactly the bookkeeping an
  /// enqueue() immediately followed by dequeue() would on an empty queue
  /// (oversize check, enqueued/dequeued counters) without the deque
  /// round-trip. Only valid when empty().
  bool passThrough(const Packet& p);

  bool empty() const { return items_.empty(); }
  std::size_t packetCount() const { return items_.size(); }
  std::int64_t bytes() const { return bytes_; }
  std::int64_t capacityBytes() const { return capacity_bytes_; }
  const QueueStats& stats() const { return stats_; }

  /// Internal-consistency check for invariant monitors: the byte counter
  /// must be non-negative, within capacity, and equal to the sum of the
  /// queued packets' sizes. Returns an empty string when consistent.
  std::string invariantError() const;

 private:
  std::int64_t capacity_bytes_;
  std::int64_t bytes_ = 0;
  std::deque<Packet> items_;
  QueueStats stats_;
};

class DsQdisc {
 public:
  /// Capacities are per class, in bytes.
  DsQdisc(std::int64_t ef_capacity, std::int64_t ll_capacity,
          std::int64_t be_capacity);

  bool enqueue(Packet p);
  std::optional<Packet> dequeue();
  /// See DropTailQueue::passThrough; routed to the packet's class band.
  bool passThrough(const Packet& p);

  bool empty() const;
  std::int64_t bytes() const;
  const DropTailQueue& classQueue(Dscp d) const;

 private:
  DropTailQueue& classQueueMutable(Dscp d);
  std::array<DropTailQueue, 3> queues_;  // indexed by Dscp value
};

}  // namespace mgq::net
