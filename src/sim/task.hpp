// Coroutine task type for simulated processes.
//
// Task<T> is a lazily-started coroutine: creating it does nothing; the
// body runs when the task is co_awaited (symmetric transfer into the
// child) or when the Simulator spawns it as a detached root process.
// Completion resumes the awaiting coroutine via symmetric transfer, so
// arbitrarily deep call chains use O(1) stack.
//
// Exception policy: an exception thrown inside an *awaited* task is
// captured and rethrown from co_await in the parent. An exception in a
// *detached* task (no awaiter — i.e. a root process spawned on the
// Simulator) propagates out of resume(), and therefore out of
// Simulator::run(), where tests can observe it.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace mgq::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& promise = static_cast<PromiseBase&>(h.promise());
      if (promise.continuation) return promise.continuation;
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() {
    if (!continuation) {
      // Detached root process: let the exception escape resume() so the
      // simulator's run loop (and the test harness) sees it.
      throw;
    }
    exception = std::current_exception();
  }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return !handle_ || handle_.done(); }

  /// Awaiting a task starts it and suspends the parent until completion.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        assert(p.value.has_value());
        return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> handle() const { return handle_; }
  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, nullptr);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return !handle_ || handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      void await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> handle() const { return handle_; }
  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, nullptr);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace mgq::sim
