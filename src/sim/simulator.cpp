#include "sim/simulator.hpp"

#include <cassert>

namespace mgq::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

Simulator::~Simulator() {
  // Destroy still-suspended processes before the queue so no dangling
  // wakeup can fire during teardown.
  processes_.clear();
  queue_.clear();
}

EventId Simulator::schedule(Duration delay, EventFn fn) {
  assert(delay >= Duration::zero());
  return queue_.push(now_ + delay, std::move(fn));
}

EventId Simulator::scheduleAt(TimePoint at, EventFn fn) {
  assert(at >= now_);
  return queue_.push(at, std::move(fn));
}

EventId Simulator::scheduleResume(Duration delay, std::coroutine_handle<> h) {
  assert(delay >= Duration::zero());
  return queue_.pushResume(now_ + delay, h);
}

bool Simulator::cancel(EventId id) { return queue_.cancel(id); }

EventId Simulator::reschedule(EventId id, Duration delay) {
  assert(delay >= Duration::zero());
  return queue_.reschedule(id, now_ + delay);
}

void Simulator::spawn(Task<> task) {
  auto handle = task.handle();
  processes_.push_back(std::move(task));
  queue_.pushResume(now_, handle);
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    TimePoint at;
    auto fn = queue_.pop(&at);
    assert(at >= now_);
    now_ = at;
    fn();
    ++events_executed_;
    if ((events_executed_ & 0x3ff) == 0) pruneFinishedProcesses();
  }
  pruneFinishedProcesses();
}

void Simulator::runUntil(TimePoint t) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.nextTime() <= t) {
    TimePoint at;
    auto fn = queue_.pop(&at);
    // Same monotonicity guarantee as run(): a stale or corrupted queue
    // entry must never move the clock backwards.
    assert(at >= now_);
    now_ = at;
    fn();
    ++events_executed_;
    if ((events_executed_ & 0x3ff) == 0) pruneFinishedProcesses();
  }
  if (!stopped_ && now_ < t) now_ = t;
  pruneFinishedProcesses();
}

void Simulator::runFor(Duration d) { runUntil(now_ + d); }

void Simulator::pruneFinishedProcesses() {
  std::erase_if(processes_, [](const Task<>& t) { return t.done(); });
}

}  // namespace mgq::sim
