#include "sim/fault_injector.hpp"

#include <cstdio>

#include "util/logging.hpp"

namespace mgq::sim {

const char* faultActionName(FaultAction a) {
  switch (a) {
    case FaultAction::kDown:
      return "down";
    case FaultAction::kUp:
      return "up";
    case FaultAction::kLossStart:
      return "loss-start";
    case FaultAction::kLossStop:
      return "loss-stop";
  }
  return "?";
}

FaultInjector::FaultInjector(Simulator& sim, std::uint64_t seed)
    : sim_(sim), rng_(seed) {}

void FaultInjector::registerTarget(const std::string& name,
                                   FaultTarget target) {
  targets_[name] = std::move(target);
}

void FaultInjector::schedule(const FaultEvent& event) {
  sim_.scheduleAt(event.at, [this, event] { fire(event); });
}

void FaultInjector::schedulePlan(const std::vector<FaultEvent>& plan) {
  for (const auto& event : plan) schedule(event);
}

void FaultInjector::scheduleFlap(const std::string& target, TimePoint at,
                                 Duration outage) {
  schedule({at, target, FaultAction::kDown, 0.0});
  schedule({at + outage, target, FaultAction::kUp, 0.0});
}

std::vector<FaultEvent> FaultInjector::makeFlapSchedule(
    const std::string& target, TimePoint from, TimePoint until,
    Duration mean_up, Duration mean_down) {
  std::vector<FaultEvent> plan;
  TimePoint t = from;
  for (;;) {
    t += Duration::seconds(rng_.exponential(mean_up.toSeconds()));
    if (t >= until) break;
    plan.push_back({t, target, FaultAction::kDown, 0.0});
    t += Duration::seconds(rng_.exponential(mean_down.toSeconds()));
    // The plan never leaves the target down past its horizon.
    plan.push_back({t < until ? t : until, target, FaultAction::kUp, 0.0});
    if (t >= until) break;
  }
  return plan;
}

void FaultInjector::fire(const FaultEvent& event) {
  ++fired_;
  char line[192];
  if (event.action == FaultAction::kLossStart) {
    std::snprintf(line, sizeof(line), "t=%.6fs %s %s p=%.4f",
                  sim_.now().toSeconds(), event.target.c_str(),
                  faultActionName(event.action), event.param);
  } else {
    std::snprintf(line, sizeof(line), "t=%.6fs %s %s",
                  sim_.now().toSeconds(), event.target.c_str(),
                  faultActionName(event.action));
  }

  const auto it = targets_.find(event.target);
  if (it == targets_.end()) {
    log_.push_back(std::string(line) + " (unregistered)");
    MGQ_LOG(kWarn) << "fault injector: no target '" << event.target << "'";
    return;
  }
  log_.push_back(line);
  MGQ_LOG(kDebug) << "fault injector: " << log_.back();

  const FaultTarget& target = it->second;
  switch (event.action) {
    case FaultAction::kDown:
      if (target.down) target.down();
      break;
    case FaultAction::kUp:
      if (target.up) target.up();
      break;
    case FaultAction::kLossStart:
      if (target.loss_start) target.loss_start(event.param);
      break;
    case FaultAction::kLossStop:
      if (target.loss_stop) target.loss_stop();
      break;
  }
}

std::string FaultInjector::logText() const {
  std::string text;
  for (const auto& line : log_) {
    text += line;
    text += '\n';
  }
  return text;
}

}  // namespace mgq::sim
