#include "sim/fault_injector.hpp"

#include <cstdio>

#include "util/logging.hpp"

namespace mgq::sim {

const char* faultActionName(FaultAction a) {
  switch (a) {
    case FaultAction::kDown:
      return "down";
    case FaultAction::kUp:
      return "up";
    case FaultAction::kLossStart:
      return "loss-start";
    case FaultAction::kLossStop:
      return "loss-stop";
  }
  return "?";
}

bool faultActionFromName(const std::string& name, FaultAction& out) {
  for (FaultAction a : {FaultAction::kDown, FaultAction::kUp,
                        FaultAction::kLossStart, FaultAction::kLossStop}) {
    if (name == faultActionName(a)) {
      out = a;
      return true;
    }
  }
  return false;
}

FaultInjector::FaultInjector(Simulator& sim, std::uint64_t seed)
    : sim_(sim), rng_(seed) {}

void FaultInjector::registerTarget(const std::string& name,
                                   FaultTarget target) {
  targets_[name] = std::move(target);
}

void FaultInjector::schedule(const FaultEvent& event) {
  sim_.scheduleAt(event.at, [this, event] { fire(event); });
}

void FaultInjector::schedulePlan(const std::vector<FaultEvent>& plan) {
  for (const auto& event : plan) schedule(event);
}

void FaultInjector::scheduleFlap(const std::string& target, TimePoint at,
                                 Duration outage) {
  schedule({at, target, FaultAction::kDown, 0.0});
  schedule({at + outage, target, FaultAction::kUp, 0.0});
}

std::vector<FaultEvent> FaultInjector::makeFlapSchedule(
    const std::string& target, TimePoint from, TimePoint until,
    Duration mean_up, Duration mean_down) {
  std::vector<FaultEvent> plan;
  TimePoint t = from;
  for (;;) {
    t += Duration::seconds(rng_.exponential(mean_up.toSeconds()));
    if (t >= until) break;
    plan.push_back({t, target, FaultAction::kDown, 0.0});
    t += Duration::seconds(rng_.exponential(mean_down.toSeconds()));
    // The plan never leaves the target down past its horizon.
    plan.push_back({t < until ? t : until, target, FaultAction::kUp, 0.0});
    if (t >= until) break;
  }
  return plan;
}

void FaultInjector::fire(const FaultEvent& event) {
  ++fired_;
  char line[192];
  if (event.action == FaultAction::kLossStart) {
    std::snprintf(line, sizeof(line), "t=%.6fs %s %s p=%.4f",
                  sim_.now().toSeconds(), event.target.c_str(),
                  faultActionName(event.action), event.param);
  } else {
    std::snprintf(line, sizeof(line), "t=%.6fs %s %s",
                  sim_.now().toSeconds(), event.target.c_str(),
                  faultActionName(event.action));
  }

  const auto it = targets_.find(event.target);
  if (it == targets_.end()) {
    ++skipped_;
    log_.push_back(std::string(line) + " (unregistered)");
    MGQ_LOG(kWarn) << "fault injector: no target '" << event.target << "'";
    return;
  }

  const FaultTarget& target = it->second;
  const bool actionable =
      (event.action == FaultAction::kDown && target.down) ||
      (event.action == FaultAction::kUp && target.up) ||
      (event.action == FaultAction::kLossStart && target.loss_start) ||
      (event.action == FaultAction::kLossStop && target.loss_stop);
  if (!actionable) {
    ++skipped_;
    log_.push_back(std::string(line) + " (no-op)");
    MGQ_LOG(kWarn) << "fault injector: target '" << event.target
                   << "' has no " << faultActionName(event.action)
                   << " action";
    return;
  }
  log_.push_back(line);
  MGQ_LOG(kDebug) << "fault injector: " << log_.back();

  switch (event.action) {
    case FaultAction::kDown:
      target.down();
      break;
    case FaultAction::kUp:
      target.up();
      break;
    case FaultAction::kLossStart:
      target.loss_start(event.param);
      break;
    case FaultAction::kLossStop:
      target.loss_stop();
      break;
  }
}

std::string FaultInjector::logText() const {
  std::string text;
  for (const auto& line : log_) {
    text += line;
    text += '\n';
  }
  return text;
}

std::string FaultInjector::logFooter() const {
  char line[96];
  std::snprintf(line, sizeof(line), "fired=%llu skipped_actions=%llu",
                static_cast<unsigned long long>(fired_),
                static_cast<unsigned long long>(skipped_));
  std::string footer = line;
  for (const auto& [name, fn] : footer_counters_) {
    const auto value = fn();
    if (value == 0) continue;  // zero-rate categories leave no trace
    std::snprintf(line, sizeof(line), " %s=%llu", name.c_str(),
                  static_cast<unsigned long long>(value));
    footer += line;
  }
  footer += '\n';
  return footer;
}

}  // namespace mgq::sim
