// Strongly-typed simulated time. The simulation clock is a 64-bit count of
// nanoseconds since the start of the run; Duration is a difference of two
// TimePoints. Nothing in the library ever reads the wall clock.
#pragma once

#include <compare>
#include <cstdint>

namespace mgq::sim {

class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration nanos(std::int64_t n) { return Duration(n); }
  static constexpr Duration micros(std::int64_t n) {
    return Duration(n * 1'000);
  }
  static constexpr Duration millis(std::int64_t n) {
    return Duration(n * 1'000'000);
  }
  static constexpr Duration seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr Duration zero() { return Duration(0); }
  /// A duration larger than any realistic simulation horizon.
  static constexpr Duration infinite() { return Duration(INT64_MAX / 4); }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double toSeconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double toMillis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr Duration operator+(Duration o) const {
    return Duration(ns_ + o.ns_);
  }
  constexpr Duration operator-(Duration o) const {
    return Duration(ns_ - o.ns_);
  }
  constexpr Duration operator*(double f) const {
    return Duration(static_cast<std::int64_t>(static_cast<double>(ns_) * f));
  }
  constexpr Duration operator/(double f) const {
    return Duration(static_cast<std::int64_t>(static_cast<double>(ns_) / f));
  }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint zero() { return TimePoint(); }
  static constexpr TimePoint fromSeconds(double s) {
    return TimePoint() + Duration::seconds(s);
  }

  constexpr Duration sinceEpoch() const { return Duration::nanos(ns_); }
  constexpr std::int64_t ns() const { return ns_; }
  constexpr double toSeconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr TimePoint operator+(Duration d) const {
    TimePoint t;
    t.ns_ = ns_ + d.ns();
    return t;
  }
  constexpr TimePoint operator-(Duration d) const {
    TimePoint t;
    t.ns_ = ns_ - d.ns();
    return t;
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::nanos(ns_ - o.ns_);
  }
  constexpr TimePoint& operator+=(Duration d) {
    ns_ += d.ns();
    return *this;
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  std::int64_t ns_ = 0;
};

/// Time to serialize `bytes` onto a link of `bits_per_second` capacity.
constexpr Duration transmissionTime(std::int64_t bytes,
                                    double bits_per_second) {
  return Duration::seconds(static_cast<double>(bytes) * 8.0 /
                           bits_per_second);
}

}  // namespace mgq::sim
