// Pending-event set for the discrete-event kernel.
//
// A binary min-heap ordered by (time, insertion sequence); the sequence
// tie-break makes same-timestamp events fire in FIFO order, which is what
// keeps coroutine wakeups deterministic. Cancellation is lazy: cancelled
// ids are remembered and the event is skipped when it surfaces.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace mgq::sim {

using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Enqueues `fn` to run at `at`. Returns an id usable with cancel().
  EventId push(TimePoint at, std::function<void()> fn);

  /// Marks a still-queued event as cancelled; it is dropped when it
  /// surfaces. Returns false if the event already fired or was cancelled.
  bool cancel(EventId id);

  bool empty() const { return liveCount() == 0; }
  std::size_t size() const { return liveCount(); }

  /// Time of the earliest live event. Requires !empty().
  TimePoint nextTime();

  /// Removes and returns the earliest live event's action, advancing past
  /// cancelled entries. Requires !empty().
  std::function<void()> pop(TimePoint* at = nullptr);

  void clear();

 private:
  struct Entry {
    TimePoint at;
    EventId id;
    std::function<void()> fn;
  };

  // Min-heap predicate: true when a fires *after* b.
  static bool later(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.id > b.id;
  }

  void siftUp(std::size_t i);
  void siftDown(std::size_t i);
  void dropCancelledTop();
  std::size_t liveCount() const { return heap_.size() - cancelled_.size(); }

  std::vector<Entry> heap_;
  std::unordered_set<EventId> queued_;     // ids currently in heap_
  std::unordered_set<EventId> cancelled_;  // subset of queued_
  EventId next_id_ = 1;
};

}  // namespace mgq::sim
