// Pending-event set for the discrete-event kernel.
//
// A binary min-heap ordered by (time, insertion sequence); the sequence
// tie-break makes same-timestamp events fire in FIFO order, which is what
// keeps coroutine wakeups deterministic. Heap entries are 24-byte PODs —
// the callback itself lives in a stable generation-tagged slot table, so
// sift operations never move a callable and cancel() is O(1): it bumps
// the slot's generation (orphaning the heap entry as a tombstone) and
// destroys the callback *immediately*, releasing everything it captured.
//
// Tombstones are skipped when they surface, and eagerly compacted away
// whenever they outnumber live entries (>= 50% dead) — so cancel-heavy
// callers (RTO restarts in src/tcp/) never grow the heap beyond ~2x the
// live set. Compaction cannot change pop order: the (time, seq) key is a
// total order, so the pop sequence is a function of the entry set alone,
// not of the heap's internal layout.
//
// EventIds encode (generation << 32 | slot). Generations start at 1 and
// bump on every release, so stale ids — including id 0, the callers'
// "no event" sentinel — never match a reused slot.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace mgq::sim {

using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Enqueues `fn` to run at `at`. Returns an id usable with cancel().
  EventId push(TimePoint at, EventFn fn);

  /// Wakeup fast path: enqueues a coroutine resume without constructing a
  /// lambda. The entry is tagged so cancelResumeEvents() can find it.
  EventId pushResume(TimePoint at, std::coroutine_handle<> h);

  /// Marks a still-queued event as cancelled and destroys its callback
  /// (and captures) immediately; the tombstone is dropped when it
  /// surfaces or at the next compaction. Returns false if the event
  /// already fired or was cancelled.
  bool cancel(EventId id);

  /// Atomically retargets a still-pending event to fire at `at` instead,
  /// reusing its callback (no destroy/rebuild) and giving it a fresh FIFO
  /// sequence — observably identical to cancel()+push() of the same
  /// callable. Returns the new id, or 0 if `id` already fired/cancelled
  /// (in which case nothing is scheduled).
  EventId reschedule(EventId id, TimePoint at);

  /// Cancels every pending resume-tagged event (delay()/Condition/spawn
  /// wakeups). Called by Simulator::destroyProcesses() so no timer can
  /// fire into a destroyed coroutine frame. Returns the number cancelled.
  std::size_t cancelResumeEvents();

  bool empty() const { return liveCount() == 0; }
  std::size_t size() const { return liveCount(); }

  /// Time of the earliest live event. Requires !empty().
  TimePoint nextTime();

  /// Removes and returns the earliest live event's action, advancing past
  /// cancelled entries. Requires !empty().
  EventFn pop(TimePoint* at = nullptr);

  void clear();

  /// Introspection for tests and the perf harness.
  std::size_t heapEntries() const { return heap_.size(); }
  std::size_t tombstones() const { return dead_; }
  std::uint64_t compactions() const { return compactions_; }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;   // global insertion order: the FIFO tie-break
    std::uint32_t slot;  // index into slots_
    std::uint32_t gen;   // must match slots_[slot].gen to be live
  };

  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
    bool armed = false;   // a live heap entry references this slot
    bool resume = false;  // armed via pushResume
  };

  // Min-heap predicate: true when a fires *after* b. (at, seq) is a
  // strict total order — seq is unique — so pop order is deterministic.
  static bool later(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  static EventId makeId(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  bool isDead(const Entry& e) const { return slots_[e.slot].gen != e.gen; }
  /// Decodes `id`; returns the slot index when it names a live event,
  /// npos otherwise.
  std::size_t decodeLive(EventId id) const;

  std::uint32_t acquireSlot();
  void releaseSlot(std::uint32_t slot);
  EventId pushEntry(TimePoint at, std::uint32_t slot);
  void popTop();
  void dropDeadTop();
  void maybeCompact();
  void compact();
  void siftUp(std::size_t i);
  void siftDown(std::size_t i);
  std::size_t liveCount() const { return heap_.size() - dead_; }

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;
  std::size_t dead_ = 0;  // tombstones currently in heap_
  std::uint64_t compactions_ = 0;
};

}  // namespace mgq::sim
