// Small-buffer-optimized, move-only callback for the event kernel.
//
// std::function heap-allocates for anything beyond a pointer or two and
// drags in copy machinery the kernel never uses. EventFn keeps callables
// up to kInlineBytes (sized to fit every hot-path capture: a coroutine
// handle, a `this` pointer plus an id, a couple of shared_ptrs) inline in
// the object, falling back to the heap only for large scripted-scenario
// closures. Move-only, so move-only captures (unique_ptr and friends)
// work too.
//
// EventFn::resume(h) is the dedicated wakeup representation: the
// delay()/Condition fast paths build it directly, so a coroutine resume
// costs one inline store — no lambda object, no type erasure beyond the
// shared ops table, no allocation.
#pragma once

#include <coroutine>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mgq::sim {

class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    emplace(std::forward<F>(f));
  }

  /// The coroutine-wakeup fast path: stores the handle inline and resumes
  /// it on invocation.
  static EventFn resume(std::coroutine_handle<> h) noexcept {
    EventFn fn;
    ::new (static_cast<void*>(fn.storage_)) std::coroutine_handle<>(h);
    fn.ops_ = &kResumeOps;
    return fn;
  }

  EventFn(EventFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, o.storage_);
      o.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, o.storage_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  /// Destroys the held callable (and everything it captures) immediately.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs dst from src, then destroys src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename F>
  static constexpr bool fitsInline() {
    return sizeof(F) <= kInlineBytes &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F>
  struct InlineOps {
    static void invoke(void* storage) { (*std::launder(reinterpret_cast<F*>(storage)))(); }
    static void relocate(void* dst, void* src) noexcept {
      F* from = std::launder(reinterpret_cast<F*>(src));
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void destroy(void* storage) noexcept {
      std::launder(reinterpret_cast<F*>(storage))->~F();
    }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename F>
  struct HeapOps {
    static F*& ptr(void* storage) { return *reinterpret_cast<F**>(storage); }
    static void invoke(void* storage) { (*ptr(storage))(); }
    static void relocate(void* dst, void* src) noexcept {
      *reinterpret_cast<F**>(dst) = ptr(src);
    }
    static void destroy(void* storage) noexcept { delete ptr(storage); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  struct ResumeOps {
    static std::coroutine_handle<>& handle(void* storage) {
      return *std::launder(reinterpret_cast<std::coroutine_handle<>*>(storage));
    }
    static void invoke(void* storage) { handle(storage).resume(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) std::coroutine_handle<>(handle(src));
    }
    static void destroy(void*) noexcept {}
  };
  static constexpr Ops kResumeOps{&ResumeOps::invoke, &ResumeOps::relocate,
                                  &ResumeOps::destroy};

  template <typename F>
  void emplace(F&& f) {
    using D = std::remove_cvref_t<F>;
    if constexpr (fitsInline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = &HeapOps<D>::ops;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace mgq::sim
