// Unbounded awaitable FIFO channel between simulated processes.
// push() never blocks; pop() suspends the caller until a value arrives.
#pragma once

#include <deque>
#include <utility>

#include "sim/condition.hpp"
#include "sim/task.hpp"

namespace mgq::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : cond_(sim) {}

  void push(T value) {
    items_.push_back(std::move(value));
    cond_.notifyOne();
  }

  /// Suspends until an item is available, then removes and returns it.
  Task<T> pop() {
    while (items_.empty()) co_await cond_.wait();
    T value = std::move(items_.front());
    items_.pop_front();
    co_return value;
  }

  /// Non-blocking variant; returns true and fills `out` if available.
  bool tryPop(T& out) {
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

 private:
  Condition cond_;
  std::deque<T> items_;
};

}  // namespace mgq::sim
