// Deterministic pseudo-random stream for the simulation. One instance per
// Simulator, seeded explicitly, so runs are exactly reproducible.
//
// Implementation: xoshiro256** (public-domain algorithm by Blackman &
// Vigna), which is fast and passes BigCrush — good enough for traffic
// generation and jitter models.
#pragma once

#include <cstdint>

namespace mgq::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a single seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t nextU64();

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

 private:
  std::uint64_t state_[4];
};

}  // namespace mgq::sim
