// Deterministic fault injection for simulations.
//
// The injector drives *registered targets* (links, loss episodes, resource
// managers — anything with down/up/loss semantics) through a schedule of
// fault events. It is layered below net/gara on purpose: targets are plain
// callbacks, so any subsystem can expose itself to fault plans without the
// simulator core depending on it (net/faults.hpp provides adapters for
// links; gara's FlakyResourceManager for managers).
//
// Determinism: the injector owns its own seeded Rng, independent of the
// simulator's traffic Rng, so the same seed + the same plan produce the
// same fault sequence regardless of what the workload does. Every fired
// event is appended to a textual log with fixed formatting; two runs with
// identical seeds must produce byte-identical logs (tested).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace mgq::sim {

/// Actions the injector can drive on a registered target. Unset actions
/// turn the corresponding plan entries into logged no-ops.
struct FaultTarget {
  std::function<void()> down;
  std::function<void()> up;
  std::function<void(double)> loss_start;  // parameter: drop probability
  std::function<void()> loss_stop;
};

enum class FaultAction {
  kDown,       // take the target out of service
  kUp,         // restore it
  kLossStart,  // begin a packet-loss episode (param = drop probability)
  kLossStop,   // end the loss episode
};

const char* faultActionName(FaultAction a);

/// Inverse of faultActionName; returns false for unknown names (replay
/// files carry actions by name).
bool faultActionFromName(const std::string& name, FaultAction& out);

/// One entry of a fault plan.
struct FaultEvent {
  TimePoint at;
  std::string target;
  FaultAction action = FaultAction::kDown;
  double param = 0.0;
};

class FaultInjector {
 public:
  FaultInjector(Simulator& sim, std::uint64_t seed);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers (or replaces) a named target.
  void registerTarget(const std::string& name, FaultTarget target);
  bool hasTarget(const std::string& name) const {
    return targets_.count(name) != 0;
  }

  /// Schedules a single plan event on the simulator.
  void schedule(const FaultEvent& event);
  void schedulePlan(const std::vector<FaultEvent>& plan);

  /// One down -> up episode: down at `at`, up after `outage`.
  void scheduleFlap(const std::string& target, TimePoint at,
                    Duration outage);

  /// Generates a random flapping plan from the injector's own seeded Rng:
  /// alternating exponentially-distributed up/down phases over
  /// [from, until). The link is always restored by `until`. Deterministic:
  /// same seed + same arguments => identical plan.
  std::vector<FaultEvent> makeFlapSchedule(const std::string& target,
                                           TimePoint from, TimePoint until,
                                           Duration mean_up,
                                           Duration mean_down);

  /// Fires an event immediately (bypassing the simulator clock); used by
  /// schedule() internally and handy in tests.
  void fire(const FaultEvent& event);

  /// Every fired event, one fixed-format line each, in firing order.
  const std::vector<std::string>& log() const { return log_; }
  /// The log joined with newlines — for byte-identical replay checks.
  std::string logText() const;
  /// Fixed-format summary line ("fired=N skipped_actions=N"). Kept out of
  /// logText() so existing per-line expectations stay valid; chaos logs
  /// append it so a shrink step cannot silently drift a repro onto unset
  /// actions without the log changing. Registered footer counters (below)
  /// that read nonzero are appended as " name=N" in registration order.
  std::string logFooter() const;

  /// Registers a supplementary footer counter (e.g. an injector's
  /// corrupted/duplicated/reordered totals). Counters that read zero are
  /// omitted from the footer, so plans that never exercise a category
  /// produce byte-identical footers with or without it registered. The
  /// callback must stay valid for the injector's lifetime.
  void registerFooterCounter(std::string name,
                             std::function<std::uint64_t()> fn) {
    footer_counters_.emplace_back(std::move(name), std::move(fn));
  }
  std::uint64_t firedCount() const { return fired_; }
  /// Plan entries that fired but drove nothing: the target was
  /// unregistered, or its callback for the requested action was unset.
  std::uint64_t skippedActions() const { return skipped_; }

  Rng& rng() { return rng_; }

 private:
  Simulator& sim_;
  Rng rng_;
  std::map<std::string, FaultTarget> targets_;
  std::vector<std::pair<std::string, std::function<std::uint64_t()>>>
      footer_counters_;
  std::vector<std::string> log_;
  std::uint64_t fired_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace mgq::sim
