// Awaitable condition variable for simulated processes.
//
// A coroutine co_awaits Condition::wait() and is parked; notifyOne/
// notifyAll schedule the wakeups *through the event queue at the current
// simulated time* rather than resuming inline, which avoids re-entrancy
// and keeps wakeup order deterministic (FIFO by wait order).
//
// Lifetime note: a parked coroutine must not be destroyed while it waits;
// in this library processes live for the duration of the simulation, and
// Simulator teardown destroys processes before draining the queue.
#pragma once

#include <coroutine>
#include <deque>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace mgq::sim {

class Condition {
 public:
  explicit Condition(Simulator& sim) : sim_(sim) {}
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  /// Awaitable that parks the caller until the next notify.
  auto wait() {
    struct Awaiter {
      Condition& cond;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        cond.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Wakes the longest-waiting coroutine (if any). The wakeup takes the
  /// resume-enqueue fast path: no lambda, no allocation.
  void notifyOne() {
    if (waiters_.empty()) return;
    auto h = waiters_.front();
    waiters_.pop_front();
    sim_.scheduleResume(Duration::zero(), h);
  }

  /// Wakes every coroutine parked *at the call*, in wait order — a
  /// snapshot, so a waiter that re-waits from inside its (deferred)
  /// wakeup is woken at most once per notifyAll generation.
  void notifyAll() {
    const std::size_t parked = waiters_.size();
    for (std::size_t i = 0; i < parked; ++i) notifyOne();
  }

  std::size_t waiterCount() const { return waiters_.size(); }
  Simulator& simulator() { return sim_; }

 private:
  Simulator& sim_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Parks the caller until `pred()` becomes true, re-checking after every
/// notification of `cond`. The classic condition-variable loop.
template <typename Pred>
Task<> awaitUntil(Condition& cond, Pred pred) {
  while (!pred()) co_await cond.wait();
}

}  // namespace mgq::sim
