#include "sim/event_queue.hpp"

#include <cassert>
#include <limits>
#include <utility>

namespace mgq::sim {
namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

// Compaction is only worth a full rebuild once the tombstone population
// is both absolutely non-trivial and at least half the heap.
constexpr std::size_t kMinDeadForCompaction = 64;

}  // namespace

std::size_t EventQueue::decodeLive(EventId id) const {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return kNpos;
  const Slot& s = slots_[slot];
  if (!s.armed || s.gen != gen) return kNpos;
  return slot;
}

std::uint32_t EventQueue::acquireSlot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::releaseSlot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.armed = false;
  s.resume = false;
  ++s.gen;  // orphans any heap entry (and id) still carrying the old gen
  free_slots_.push_back(slot);
}

EventId EventQueue::pushEntry(TimePoint at, std::uint32_t slot) {
  heap_.push_back(Entry{at, next_seq_++, slot, slots_[slot].gen});
  siftUp(heap_.size() - 1);
  return makeId(slots_[slot].gen, slot);
}

EventId EventQueue::push(TimePoint at, EventFn fn) {
  const std::uint32_t slot = acquireSlot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.armed = true;
  return pushEntry(at, slot);
}

EventId EventQueue::pushResume(TimePoint at, std::coroutine_handle<> h) {
  const std::uint32_t slot = acquireSlot();
  Slot& s = slots_[slot];
  s.fn = EventFn::resume(h);
  s.armed = true;
  s.resume = true;
  return pushEntry(at, slot);
}

bool EventQueue::cancel(EventId id) {
  const std::size_t slot = decodeLive(id);
  if (slot == kNpos) return false;
  releaseSlot(static_cast<std::uint32_t>(slot));
  ++dead_;
  maybeCompact();
  return true;
}

EventId EventQueue::reschedule(EventId id, TimePoint at) {
  const std::size_t slot = decodeLive(id);
  if (slot == kNpos) return 0;
  // Bump the generation to tombstone the old entry, keep the callback
  // armed in place, and enqueue a fresh entry as if just pushed.
  ++slots_[slot].gen;
  ++dead_;
  const EventId fresh = pushEntry(at, static_cast<std::uint32_t>(slot));
  maybeCompact();
  return fresh;
}

std::size_t EventQueue::cancelResumeEvents() {
  std::size_t cancelled = 0;
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].armed && slots_[slot].resume) {
      releaseSlot(slot);
      ++dead_;
      ++cancelled;
    }
  }
  maybeCompact();
  return cancelled;
}

TimePoint EventQueue::nextTime() {
  dropDeadTop();
  assert(!heap_.empty());
  return heap_.front().at;
}

EventFn EventQueue::pop(TimePoint* at) {
  dropDeadTop();
  assert(!heap_.empty());
  const Entry& top = heap_.front();
  if (at != nullptr) *at = top.at;
  EventFn fn = std::move(slots_[top.slot].fn);
  releaseSlot(top.slot);
  popTop();
  return fn;
}

void EventQueue::clear() {
  // Release (not reset) every armed slot so generations keep advancing —
  // an id issued before clear() must never match an event pushed after.
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].armed) releaseSlot(slot);
  }
  heap_.clear();
  dead_ = 0;
}

void EventQueue::popTop() {
  const Entry back = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = back;
    siftDown(0);
  }
}

void EventQueue::dropDeadTop() {
  while (!heap_.empty() && isDead(heap_.front())) {
    popTop();
    assert(dead_ > 0);
    --dead_;
  }
}

void EventQueue::maybeCompact() {
  if (dead_ >= kMinDeadForCompaction && dead_ * 2 >= heap_.size()) compact();
}

void EventQueue::compact() {
  std::size_t w = 0;
  for (std::size_t r = 0; r < heap_.size(); ++r) {
    if (!isDead(heap_[r])) heap_[w++] = heap_[r];
  }
  heap_.resize(w);
  dead_ = 0;
  // Floyd heapify; legal because (at, seq) is a total order, so the heap's
  // internal arrangement cannot influence pop order.
  for (std::size_t i = heap_.size() / 2; i-- > 0;) siftDown(i);
  ++compactions_;
}

// Both sifts move a hole instead of swapping — one Entry store per level
// rather than three. (at, seq) is a strict total order, so — as with
// compact()'s Floyd heapify — the heap's internal arrangement cannot
// influence pop order and the cheaper sift is observationally identical.

void EventQueue::siftUp(std::size_t i) {
  const Entry item = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], item)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = item;
}

void EventQueue::siftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  const Entry item = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    const std::size_t r = child + 1;
    if (r < n && later(heap_[child], heap_[r])) child = r;
    if (!later(item, heap_[child])) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = item;
}

}  // namespace mgq::sim
