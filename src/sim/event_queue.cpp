#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace mgq::sim {

EventId EventQueue::push(TimePoint at, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, id, std::move(fn)});
  queued_.insert(id);
  siftUp(heap_.size() - 1);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (queued_.count(id) == 0) return false;
  return cancelled_.insert(id).second;
}

TimePoint EventQueue::nextTime() {
  dropCancelledTop();
  assert(!heap_.empty());
  return heap_.front().at;
}

std::function<void()> EventQueue::pop(TimePoint* at) {
  dropCancelledTop();
  assert(!heap_.empty());
  if (at != nullptr) *at = heap_.front().at;
  std::function<void()> fn = std::move(heap_.front().fn);
  queued_.erase(heap_.front().id);
  std::swap(heap_.front(), heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) siftDown(0);
  return fn;
}

void EventQueue::clear() {
  heap_.clear();
  queued_.clear();
  cancelled_.clear();
}

void EventQueue::siftUp(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::siftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && later(heap_[smallest], heap_[l])) smallest = l;
    if (r < n && later(heap_[smallest], heap_[r])) smallest = r;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void EventQueue::dropCancelledTop() {
  while (!heap_.empty() && cancelled_.count(heap_.front().id) != 0) {
    cancelled_.erase(heap_.front().id);
    queued_.erase(heap_.front().id);
    std::swap(heap_.front(), heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) siftDown(0);
  }
}

}  // namespace mgq::sim
