#include "sim/random.hpp"

#include <cmath>

namespace mgq::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::nextU64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::nextDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * nextDouble();
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(nextU64() % range);
}

double Rng::exponential(double mean) {
  double u = nextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return nextDouble() < p; }

}  // namespace mgq::sim
