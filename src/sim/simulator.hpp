// The discrete-event simulator: virtual clock, event queue, coroutine
// process management, and the per-run deterministic RNG.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mgq::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedules `fn` to run after `delay` of simulated time.
  EventId schedule(Duration delay, EventFn fn);
  EventId scheduleAt(TimePoint at, EventFn fn);
  /// Wakeup fast path: schedules `h` to be resumed — no lambda, no
  /// type-erased allocation. delay()/Condition/spawn enqueue through
  /// this, and destroyProcesses() cancels everything scheduled this way.
  EventId scheduleResume(Duration delay, std::coroutine_handle<> h);
  /// Cancels a pending event; returns false if it already fired.
  bool cancel(EventId id);
  /// Retargets a still-pending event to `delay` from now, reusing its
  /// callback — observably identical to cancel()+schedule() of the same
  /// callable, without destroying/rebuilding it. Returns the new id, or
  /// 0 if `id` already fired/cancelled (nothing is scheduled). The timer
  /// restart path for TCP's per-ACK RTO churn.
  EventId reschedule(EventId id, Duration delay);

  /// Launches a detached root process at the current simulated time. The
  /// simulator keeps the coroutine frame alive until it completes (or the
  /// simulator is destroyed).
  void spawn(Task<> task);

  /// Runs until the event queue drains or stop() is called.
  void run();
  /// Runs all events with timestamps <= t, then advances the clock to t.
  void runUntil(TimePoint t);
  /// Convenience: runUntil(now() + d).
  void runFor(Duration d);
  /// Requests that run()/runUntil() return after the current event.
  void stop() { stopped_ = true; }

  /// Destroys every spawned process frame immediately, then cancels every
  /// pending coroutine wakeup (delay timers, Condition notifies, spawn
  /// kickoffs) so none can fire on a dangling frame afterwards.
  /// Infrastructure objects (networks, MPI worlds) call this from their
  /// destructors so that suspended coroutines — whose locals may own
  /// sockets referring to that infrastructure — are unwound while it is
  /// still alive, instead of at Simulator destruction when it is already
  /// gone. Frame destructors may themselves enqueue wakeups (e.g. an
  /// AsyncMutex guard unlocking), which is why the frames go first and
  /// the cancellation sweep second.
  void destroyProcesses() {
    processes_.clear();
    queue_.cancelResumeEvents();
  }

  /// Awaitable: suspends the calling coroutine for `d` simulated time.
  auto delay(Duration d) {
    struct Awaiter {
      Simulator& sim;
      Duration d;
      bool await_ready() const noexcept { return d <= Duration::zero(); }
      void await_suspend(std::coroutine_handle<> h) {
        sim.scheduleResume(d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable: suspends until the given absolute simulated time (no-op if
  /// already past it).
  auto delayUntil(TimePoint t) { return delay(t - now_); }

  /// Number of events executed so far (for micro-benchmarks/tests).
  std::uint64_t eventsExecuted() const { return events_executed_; }

 private:
  void pruneFinishedProcesses();

  EventQueue queue_;
  TimePoint now_;
  Rng rng_;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
  std::vector<Task<>> processes_;
};

}  // namespace mgq::sim
