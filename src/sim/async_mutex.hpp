// Cooperative mutex for simulated processes: serializes critical sections
// across coroutines (e.g. interleaving-free writes to a shared TCP
// connection). FIFO handoff via Condition.
#pragma once

#include "sim/condition.hpp"
#include "sim/task.hpp"

namespace mgq::sim {

class AsyncMutex {
 public:
  explicit AsyncMutex(Simulator& sim) : cond_(sim) {}

  Task<> lock() {
    while (locked_) co_await cond_.wait();
    locked_ = true;
  }

  void unlock() {
    locked_ = false;
    cond_.notifyOne();
  }

  bool locked() const { return locked_; }

  /// RAII-ish scope: co_await mutex.scoped() then keep the Guard alive.
  struct Guard {
    AsyncMutex* mutex = nullptr;
    Guard() = default;
    explicit Guard(AsyncMutex& m) : mutex(&m) {}
    Guard(Guard&& o) noexcept : mutex(std::exchange(o.mutex, nullptr)) {}
    Guard& operator=(Guard&& o) noexcept {
      release();
      mutex = std::exchange(o.mutex, nullptr);
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { release(); }
    void release() {
      if (mutex != nullptr) {
        mutex->unlock();
        mutex = nullptr;
      }
    }
  };

  Task<Guard> scoped() {
    co_await lock();
    co_return Guard(*this);
  }

 private:
  Condition cond_;
  bool locked_ = false;
};

}  // namespace mgq::sim
