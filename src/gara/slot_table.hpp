// Slot table for admission control (paper §4.2: "This manager uses a slot
// table to keep track of reservations").
//
// Capacity is a scalar resource amount (bits/second for a network link,
// CPU fraction for a processor). A slot claims `amount` over [start, end);
// admission requires that total claims never exceed capacity at any
// instant of the requested interval — checked at the interval's event
// points, which is exact for piecewise-constant usage.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace mgq::gara {

using SlotId = std::uint64_t;

class SlotTable {
 public:
  explicit SlotTable(double capacity);

  double capacity() const { return capacity_; }

  /// True when `amount` fits everywhere in [start, end).
  bool available(sim::TimePoint start, sim::TimePoint end,
                 double amount) const;

  /// Claims the interval; returns 0 when it does not fit.
  SlotId insert(sim::TimePoint start, sim::TimePoint end, double amount);

  /// Releases a claim. Returns false for unknown ids.
  bool remove(SlotId id);

  /// Atomically replaces a slot's claim; on failure the original claim is
  /// kept untouched.
  bool modify(SlotId id, sim::TimePoint start, sim::TimePoint end,
              double amount);

  /// Total claimed amount at time `t`.
  double usedAt(sim::TimePoint t) const;

  std::size_t slotCount() const { return slots_.size(); }

  /// Every claimed slot id, sorted — a deterministic view for the
  /// anti-entropy Reconciler's orphan-slot sweep.
  std::vector<SlotId> ids() const;

  /// Test-only: disables the capacity check so insert()/modify() admit
  /// anything, while usedAt()/capacity() keep reporting the truth. Exists
  /// to plant an over-admission bug that the chaos InvariantMonitor must
  /// catch (slot-table conservation); never set in production paths.
  void forceOverAdmissionForTest(bool on) { force_over_admission_ = on; }

 private:
  struct Slot {
    sim::TimePoint start;
    sim::TimePoint end;
    double amount;
  };

  double capacity_;
  std::unordered_map<SlotId, Slot> slots_;
  SlotId next_id_ = 1;
  bool force_over_admission_ = false;
};

}  // namespace mgq::gara
