// Bandwidth broker: domain-level admission control (paper §2: "admission
// control is performed not by the router but by an external QoS system,
// usually referred to as a bandwidth broker").
//
// In a DS domain, enforcement (classify/mark/police) happens only at the
// edge, but admission must account for *every* link a premium flow
// crosses — otherwise two flows entering at different edges could
// together oversubscribe a shared interior link. The broker models this
// with one enforcing resource (the edge) plus accounting-only resources
// (interior links) per path, and admits a path request all-or-nothing
// through GARA's co-reservation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "gara/gara.hpp"

namespace mgq::gara {

/// Accounting-only manager for an interior DS link: participates in
/// admission (slot table) but installs nothing — interior routers trust
/// the edge marking.
class LinkAccountingManager : public ResourceManager {
 public:
  explicit LinkAccountingManager(double premium_capacity_bps)
      : ResourceManager(premium_capacity_bps) {}

  std::string type() const override { return "link-accounting"; }
  std::string validate(const ReservationRequest& request) const override {
    return request.amount > 0.0 ? std::string{}
                                : "reservation needs amount > 0";
  }
  void enforce(Reservation&) override {}
  void release(Reservation&) override {}
};

class BandwidthBroker {
 public:
  explicit BandwidthBroker(Gara& gara) : gara_(&gara) {}

  /// Defines a named path as an ordered list of GARA resource names; the
  /// first is the enforcing edge, the rest are accounting-only interior
  /// links. All names must already be registered with GARA.
  void definePath(const std::string& name,
                  std::vector<std::string> resources);

  bool hasPath(const std::string& name) const {
    return paths_.count(name) != 0;
  }
  std::vector<std::string> pathNames() const;

  /// Result of a path reservation: one handle per traversed resource,
  /// cancelled/modified as a unit.
  struct PathReservation {
    std::vector<ReservationHandle> handles;
    std::string error;
    explicit operator bool() const { return error.empty(); }
  };

  /// Requests `request.amount` along every link of the path,
  /// all-or-nothing.
  PathReservation requestPath(const std::string& path,
                              const ReservationRequest& request);

  /// Cancels every leg.
  void cancel(PathReservation& reservation);

  /// Modifies every leg to `new_amount`; on any failure the previous
  /// amounts are restored and false is returned.
  bool modify(PathReservation& reservation, double new_amount);

 private:
  Gara* gara_;
  std::map<std::string, std::vector<std::string>> paths_;
};

}  // namespace mgq::gara
