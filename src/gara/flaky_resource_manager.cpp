#include "gara/flaky_resource_manager.hpp"

#include <algorithm>
#include <vector>

namespace mgq::gara {

std::string FlakyResourceManager::validate(
    const ReservationRequest& request) const {
  if (outage_) return "resource manager unreachable (injected outage)";
  if (deny_next_ > 0) {
    --deny_next_;
    return "reservation denied (injected fault)";
  }
  return inner_->validate(request);
}

void FlakyResourceManager::enforce(Reservation& reservation) {
  inner_->enforce(reservation);
  active_.insert(reservation.id());
}

void FlakyResourceManager::release(Reservation& reservation) {
  active_.erase(reservation.id());
  inner_->release(reservation);
}

void FlakyResourceManager::revokeActive(const std::string& reason) {
  // reportFailure() re-enters release() and erases from active_.
  std::vector<std::uint64_t> victims(active_.begin(), active_.end());
  std::sort(victims.begin(), victims.end());  // deterministic revoke order
  for (const auto id : victims) reportFailure(id, reason);
}

std::vector<std::uint64_t> FlakyResourceManager::enforcedIds() const {
  std::vector<std::uint64_t> ids(active_.begin(), active_.end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

sim::FaultTarget FlakyResourceManager::faultTarget() {
  sim::FaultTarget target;
  target.down = [this] {
    setOutage(true);
    revokeActive("resource manager outage revoked the reservation");
  };
  target.up = [this] { setOutage(false); };
  return target;
}

}  // namespace mgq::gara
