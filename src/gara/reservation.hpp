// Reservation objects and requests (paper §4.2).
//
// GARA exposes one uniform request shape for every resource type; the
// type-specific fields are interpreted by the resource manager the
// request is submitted to. A successful reserve() yields an opaque handle
// through which the reservation can be modified, cancelled, monitored by
// polling, or watched through state-change callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/cpu_scheduler.hpp"
#include "gara/slot_table.hpp"
#include "net/classifier.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace mgq::net {
class Interface;
}

namespace mgq::gara {

enum class ReservationState {
  kPending,    // admitted, waiting for its start time (advance reservation)
  kActive,     // enforcement in place
  kExpired,    // duration elapsed; enforcement removed
  kCancelled,  // cancelled by the holder
  kFailed,     // enforcement lost mid-lifetime (link down, capacity revoked)
};

/// True for states a reservation can never leave (and holds nothing in).
inline bool isTerminal(ReservationState s) {
  return s == ReservationState::kExpired ||
         s == ReservationState::kCancelled || s == ReservationState::kFailed;
}

const char* reservationStateName(ReservationState s);

/// Uniform reservation request. `amount` is bits/second for network
/// managers and a CPU fraction (0..1) for CPU managers.
struct ReservationRequest {
  sim::TimePoint start;  // == now for immediate reservations
  sim::Duration duration = sim::Duration::infinite();
  double amount = 0.0;
  /// Lease duration for control-plane resilience: when non-zero (and a
  /// resil::LeaseManager is attached), the holder must renew within this
  /// window or enforcement is hard-expired with reason "lease_expired".
  /// Zero = unleased (legacy behaviour, or the lease manager's default).
  sim::Duration lease = sim::Duration::zero();

  // --- network-specific -------------------------------------------------
  net::FlowMatch flow;  // which packets the premium service applies to
  net::Dscp mark = net::Dscp::kExpedited;
  net::OutOfProfileAction out_action = net::OutOfProfileAction::kDrop;
  /// Token bucket depth = amount / divisor (paper §4.3; 40 = "normal",
  /// 4 = "large").
  double bucket_divisor = net::TokenBucket::kNormalDivisor;
  /// Override the manager's default attachment interface (rarely needed).
  net::Interface* attach = nullptr;

  // --- CPU-specific -----------------------------------------------------
  cpu::JobId cpu_job = 0;

  // --- storage-specific ---------------------------------------------------
  /// DPSS session to pin bandwidth for (amount is bits/second).
  std::uint32_t storage_session = 0;
};

class ResourceManager;

/// A granted reservation. Owned jointly by the caller (handle) and the
/// Gara core (timers); thread-free single-simulator lifetime.
class Reservation {
 public:
  using StateCallback = std::function<void(Reservation&, ReservationState,
                                           ReservationState)>;

  Reservation(std::uint64_t id, ReservationRequest request,
              ResourceManager& manager, SlotId slot)
      : id_(id), request_(request), manager_(&manager), slot_(slot) {}

  std::uint64_t id() const { return id_; }
  ReservationState state() const { return state_; }
  /// Why the reservation entered kFailed (empty otherwise).
  const std::string& failureReason() const { return failure_reason_; }
  const ReservationRequest& request() const { return request_; }
  ResourceManager& manager() { return *manager_; }
  SlotId slot() const { return slot_; }

  /// Registers a callback fired on every state transition.
  void onStateChange(StateCallback cb) {
    callbacks_.push_back(std::move(cb));
  }

  /// Used by Gara/managers; library users never call this.
  void transition(ReservationState next);

  // Enforcement bookkeeping used by managers.
  std::uint64_t enforcement_rule_id = 0;
  std::shared_ptr<net::TokenBucket> bucket;

 private:
  std::uint64_t id_;
  ReservationRequest request_;
  ResourceManager* manager_;
  SlotId slot_;
  ReservationState state_ = ReservationState::kPending;
  std::string failure_reason_;
  std::vector<StateCallback> callbacks_;

  friend class Gara;
  void updateRequest(const ReservationRequest& r) { request_ = r; }
};

using ReservationHandle = std::shared_ptr<Reservation>;

/// Result of a reserve call: either a handle or a rejection reason.
struct ReserveOutcome {
  ReservationHandle handle;
  std::string error;
  explicit operator bool() const { return handle != nullptr; }
};

}  // namespace mgq::gara
