// Resource managers: the pluggable enforcement backends of GARA
// (paper §4.2: "only certain elements of this resource manager need to be
// replaced to instantiate a new resource interface").
//
// A manager owns a slot table (admission) and knows how to program its
// device when a reservation activates: the DS network manager installs a
// classifier rule plus token-bucket policer on an edge interface; the CPU
// manager applies a DSRT reservation.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "gara/reservation.hpp"
#include "gara/slot_table.hpp"
#include "net/node.hpp"

namespace mgq::gara {

class ResourceManager {
 public:
  explicit ResourceManager(double capacity) : slots_(capacity) {}
  virtual ~ResourceManager() = default;
  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  virtual std::string type() const = 0;

  /// Validates manager-specific request fields; returns an error string
  /// (empty = OK). Called before slot-table admission.
  virtual std::string validate(const ReservationRequest& request) const = 0;

  /// Programs the device for an activating reservation.
  virtual void enforce(Reservation& reservation) = 0;

  /// Removes the device programming (expiry/cancel of an active
  /// reservation).
  virtual void release(Reservation& reservation) = 0;

  /// Re-programs the device after a successful modify of an active
  /// reservation. Default: release + enforce.
  virtual void reconfigure(Reservation& reservation) {
    release(reservation);
    enforce(reservation);
  }

  /// Heartbeat probe target: true when the manager's control channel
  /// would answer a probe right now. Fault proxies override this to model
  /// an unreachable per-domain manager.
  virtual bool reachable() const { return true; }

  /// Reservation ids with device enforcement currently installed, sorted.
  /// The Reconciler and the no-zombie-enforcement chaos invariant compare
  /// this against journal-live state; managers that do not track per-id
  /// enforcement report nothing (and are skipped by those sweeps).
  virtual std::vector<std::uint64_t> enforcedIds() const { return {}; }

  SlotTable& slots() { return slots_; }
  const SlotTable& slots() const { return slots_; }

  /// Upward notification channel (paper §4.2: monitoring/state-change
  /// callbacks). Gara installs a listener at registration; a manager calls
  /// reportFailure() when enforcement for an admitted reservation is lost
  /// (device went down, capacity revoked, preemption) and Gara moves the
  /// reservation to kFailed.
  using FailureListener =
      std::function<void(std::uint64_t reservation_id,
                         const std::string& reason)>;
  void setFailureListener(FailureListener listener) {
    failure_listener_ = std::move(listener);
  }

 protected:
  void reportFailure(std::uint64_t reservation_id,
                     const std::string& reason) {
    if (failure_listener_) failure_listener_(reservation_id, reason);
  }

 private:
  SlotTable slots_;
  FailureListener failure_listener_;
};

/// DS network manager: admission against the premium share of a bottleneck
/// link; enforcement = classifier + token-bucket marker/policer installed
/// on an edge interface's ingress policy (paper §5.1 mechanisms).
class NetworkResourceManager : public ResourceManager {
 public:
  /// `premium_capacity_bps` bounds total admitted premium bandwidth (EF
  /// must stay a bounded fraction of the link to avoid starving best
  /// effort); `default_edge` is where rules are installed unless the
  /// request overrides it.
  NetworkResourceManager(double premium_capacity_bps,
                         net::Interface& default_edge)
      : ResourceManager(premium_capacity_bps), edge_(&default_edge) {}

  std::string type() const override { return "network"; }
  std::string validate(const ReservationRequest& request) const override;
  void enforce(Reservation& reservation) override;
  void release(Reservation& reservation) override;
  std::vector<std::uint64_t> enforcedIds() const override;

  net::Interface& defaultEdge() { return *edge_; }

  /// Active reservations enforced on `iface` (fault-path bookkeeping).
  std::size_t activeOn(const net::Interface& iface) const;

 private:
  static net::Interface& attachPoint(Reservation& r,
                                     net::Interface& fallback) {
    return r.request().attach != nullptr ? *r.request().attach : fallback;
  }
  /// Subscribes (once per interface) to link-state changes so that an
  /// attachment going down fails every reservation enforced on it.
  void watch(net::Interface& iface);
  void onAttachmentDown(net::Interface& iface);

  net::Interface* edge_;
  std::unordered_map<std::uint64_t, net::Interface*> active_;
  std::set<const net::Interface*> watched_;
};

/// DSRT CPU manager: admission against the schedulable fraction;
/// enforcement = a soft real-time share pinned on the host scheduler.
class CpuResourceManager : public ResourceManager {
 public:
  explicit CpuResourceManager(cpu::CpuScheduler& cpu)
      : ResourceManager(cpu::CpuScheduler::maxReservable()), cpu_(&cpu) {}

  std::string type() const override { return "cpu"; }
  std::string validate(const ReservationRequest& request) const override;
  void enforce(Reservation& reservation) override;
  void release(Reservation& reservation) override;
  std::vector<std::uint64_t> enforcedIds() const override;

  cpu::CpuScheduler& scheduler() { return *cpu_; }

 private:
  cpu::CpuScheduler* cpu_;
  std::set<std::uint64_t> enforced_;
};

}  // namespace mgq::gara
