#include "gara/slot_table.hpp"

#include <algorithm>
#include <cassert>

namespace mgq::gara {

SlotTable::SlotTable(double capacity) : capacity_(capacity) {
  assert(capacity > 0.0);
}

double SlotTable::usedAt(sim::TimePoint t) const {
  double used = 0.0;
  for (const auto& [id, slot] : slots_) {
    if (slot.start <= t && t < slot.end) used += slot.amount;
  }
  return used;
}

bool SlotTable::available(sim::TimePoint start, sim::TimePoint end,
                          double amount) const {
  if (end <= start || amount < 0.0) return false;
  if (force_over_admission_) return true;  // planted-bug mode (tests only)
  if (amount > capacity_ + 1e-9) return false;
  // Piecewise-constant usage: the maximum over [start, end) is attained at
  // `start` or at some slot boundary inside the interval.
  if (usedAt(start) + amount > capacity_ + 1e-9) return false;
  for (const auto& [id, slot] : slots_) {
    if (slot.start > start && slot.start < end) {
      if (usedAt(slot.start) + amount > capacity_ + 1e-9) return false;
    }
  }
  return true;
}

SlotId SlotTable::insert(sim::TimePoint start, sim::TimePoint end,
                         double amount) {
  if (!available(start, end, amount)) return 0;
  const SlotId id = next_id_++;
  slots_.emplace(id, Slot{start, end, amount});
  return id;
}

bool SlotTable::remove(SlotId id) { return slots_.erase(id) != 0; }

std::vector<SlotId> SlotTable::ids() const {
  std::vector<SlotId> out;
  out.reserve(slots_.size());
  for (const auto& [id, slot] : slots_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

bool SlotTable::modify(SlotId id, sim::TimePoint start, sim::TimePoint end,
                       double amount) {
  const auto it = slots_.find(id);
  if (it == slots_.end()) return false;
  const Slot saved = it->second;
  slots_.erase(it);  // re-check admission without our own claim
  if (!available(start, end, amount)) {
    slots_.emplace(id, saved);
    return false;
  }
  slots_.emplace(id, Slot{start, end, amount});
  return true;
}

}  // namespace mgq::gara
