#include "gara/gara.hpp"

#include <cassert>

namespace mgq::gara {

const char* reservationStateName(ReservationState s) {
  switch (s) {
    case ReservationState::kPending:
      return "pending";
    case ReservationState::kActive:
      return "active";
    case ReservationState::kExpired:
      return "expired";
    case ReservationState::kCancelled:
      return "cancelled";
  }
  return "?";
}

void Reservation::transition(ReservationState next) {
  const auto old = state_;
  if (old == next) return;
  state_ = next;
  for (const auto& cb : callbacks_) cb(*this, old, next);
}

void Gara::registerManager(const std::string& name,
                           ResourceManager& manager) {
  const bool inserted = managers_.emplace(name, &manager).second;
  assert(inserted && "duplicate resource name");
  (void)inserted;
}

ResourceManager* Gara::findManager(const std::string& name) {
  const auto it = managers_.find(name);
  return it == managers_.end() ? nullptr : it->second;
}

std::vector<std::string> Gara::resourceNames() const {
  std::vector<std::string> names;
  names.reserve(managers_.size());
  for (const auto& [name, manager] : managers_) names.push_back(name);
  return names;
}

ReserveOutcome Gara::reserve(const std::string& resource,
                             ReservationRequest request) {
  auto* manager = findManager(resource);
  if (manager == nullptr) {
    return {nullptr, "unknown resource '" + resource + "'"};
  }
  if (auto error = manager->validate(request); !error.empty()) {
    return {nullptr, error};
  }
  if (request.start < sim_.now()) request.start = sim_.now();
  const auto slot =
      manager->slots().insert(request.start, endOf(request), request.amount);
  if (slot == 0) {
    return {nullptr, "admission control: insufficient capacity on '" +
                         resource + "'"};
  }
  auto handle = std::make_shared<Reservation>(next_reservation_id_++,
                                              request, *manager, slot);
  if (request.start <= sim_.now()) {
    activate(handle);
  } else {
    sim_.scheduleAt(request.start, [this, handle] {
      if (handle->state() == ReservationState::kPending) activate(handle);
    });
  }
  return {handle, {}};
}

Gara::CoOutcome Gara::coReserve(const std::vector<CoRequest>& requests) {
  CoOutcome outcome;
  for (const auto& co : requests) {
    auto result = reserve(co.resource, co.request);
    if (!result) {
      // All-or-nothing: roll back everything granted so far.
      for (auto& held : outcome.handles) cancel(held);
      outcome.handles.clear();
      outcome.error = "co-reservation failed on '" + co.resource +
                      "': " + result.error;
      return outcome;
    }
    outcome.handles.push_back(std::move(result.handle));
  }
  return outcome;
}

bool Gara::modify(const ReservationHandle& handle, double new_amount,
                  double new_bucket_divisor) {
  assert(handle != nullptr);
  const auto state = handle->state();
  if (state == ReservationState::kExpired ||
      state == ReservationState::kCancelled) {
    return false;
  }
  auto request = handle->request();
  request.amount = new_amount;
  if (new_bucket_divisor > 0.0) request.bucket_divisor = new_bucket_divisor;
  if (auto error = handle->manager().validate(request); !error.empty()) {
    return false;
  }
  if (!handle->manager().slots().modify(handle->slot(), request.start,
                                        endOf(request), request.amount)) {
    return false;
  }
  handle->updateRequest(request);
  if (state == ReservationState::kActive) {
    handle->manager().reconfigure(*handle);
  }
  return true;
}

void Gara::cancel(const ReservationHandle& handle) {
  assert(handle != nullptr);
  const auto state = handle->state();
  if (state == ReservationState::kExpired ||
      state == ReservationState::kCancelled) {
    return;
  }
  if (state == ReservationState::kActive) {
    handle->manager().release(*handle);
  }
  handle->manager().slots().remove(handle->slot());
  handle->transition(ReservationState::kCancelled);
}

void Gara::activate(const ReservationHandle& handle) {
  handle->manager().enforce(*handle);
  handle->transition(ReservationState::kActive);
  const auto end = endOf(handle->request());
  if (handle->request().duration < sim::Duration::infinite()) {
    sim_.scheduleAt(end, [this, handle] {
      if (handle->state() == ReservationState::kActive) expire(handle);
    });
  }
}

void Gara::expire(const ReservationHandle& handle) {
  handle->manager().release(*handle);
  handle->manager().slots().remove(handle->slot());
  handle->transition(ReservationState::kExpired);
}

}  // namespace mgq::gara
