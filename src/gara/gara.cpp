#include "gara/gara.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace mgq::gara {

const char* reservationStateName(ReservationState s) {
  switch (s) {
    case ReservationState::kPending:
      return "pending";
    case ReservationState::kActive:
      return "active";
    case ReservationState::kExpired:
      return "expired";
    case ReservationState::kCancelled:
      return "cancelled";
    case ReservationState::kFailed:
      return "failed";
  }
  return "?";
}

void Reservation::transition(ReservationState next) {
  const auto old = state_;
  if (old == next) return;
  state_ = next;
  for (const auto& cb : callbacks_) cb(*this, old, next);
}

void Gara::registerManager(const std::string& name,
                           ResourceManager& manager) {
  managers_[name] = &manager;  // re-registration replaces (fault proxies)
  // The manager tells GARA when enforcement is lost; GARA resolves the id
  // back to a handle and drives the kFailed transition.
  manager.setFailureListener(
      [this](std::uint64_t id, const std::string& reason) {
        if (auto handle = findLive(id)) fail(handle, reason);
      });
}

void Gara::attachObservability(obs::MetricsRegistry* metrics,
                               obs::TraceBuffer* trace) {
  metrics_ = metrics;
  trace_ = trace;
  if (trace_ != nullptr) {
    trace_->setClock([this] { return sim_.now().toSeconds(); });
  }
}

void Gara::countEvent(const char* counter) {
  if (metrics_ != nullptr) metrics_->counter(counter).inc();
}

void Gara::traceEvent(const char* event, std::uint64_t id, double value,
                      const std::string& detail) {
  if (trace_ != nullptr) {
    trace_->record("reservation", event, id, value, detail);
  }
}

std::string Gara::resourceNameOf(const ResourceManager* manager) const {
  for (const auto& [name, registered] : managers_) {
    if (registered == manager) return name;
  }
  return "?";
}

void Gara::updateUtilization(const ResourceManager& manager) {
  if (metrics_ == nullptr) return;
  const double capacity = manager.slots().capacity();
  if (capacity <= 0.0) return;
  metrics_->gauge("gara.slot_utilization." + resourceNameOf(&manager))
      .set(manager.slots().usedAt(sim_.now()) / capacity);
}

ResourceManager* Gara::findManager(const std::string& name) {
  const auto it = managers_.find(name);
  return it == managers_.end() ? nullptr : it->second;
}

std::vector<std::string> Gara::resourceNames() const {
  std::vector<std::string> names;
  names.reserve(managers_.size());
  for (const auto& [name, manager] : managers_) names.push_back(name);
  return names;
}

ReserveOutcome Gara::reserve(const std::string& resource,
                             ReservationRequest request) {
  countEvent("gara.requests");
  traceEvent("requested", 0, request.amount, resource);
  auto* manager = findManager(resource);
  if (manager == nullptr) {
    countEvent("gara.rejected");
    traceEvent("rejected", 0, request.amount, "unknown resource " + resource);
    return {nullptr, "unknown resource '" + resource + "'"};
  }
  if (auto error = manager->validate(request); !error.empty()) {
    countEvent("gara.rejected");
    traceEvent("rejected", 0, request.amount, error);
    return {nullptr, error};
  }
  if (request.start < sim_.now()) request.start = sim_.now();
  const auto slot =
      manager->slots().insert(request.start, endOf(request), request.amount);
  if (slot == 0) {
    countEvent("gara.rejected");
    traceEvent("rejected", 0, request.amount,
               "admission control on " + resource);
    return {nullptr, "admission control: insufficient capacity on '" +
                         resource + "'"};
  }
  auto handle = std::make_shared<Reservation>(next_reservation_id_++,
                                              request, *manager, slot);
  live_[handle->id()] = handle;
  countEvent("gara.admitted");
  traceEvent("admitted", handle->id(), request.amount, resource);
  notifyLifecycle("admitted", handle);
  updateUtilization(*manager);
  armTimers(handle);
  return {handle, {}};
}

Gara::CoOutcome Gara::coReserve(const std::vector<CoRequest>& requests) {
  CoOutcome outcome;
  for (const auto& co : requests) {
    auto result = reserve(co.resource, co.request);
    if (!result) {
      // All-or-nothing: roll back everything granted so far.
      for (auto& held : outcome.handles) cancel(held);
      outcome.handles.clear();
      outcome.error = "co-reservation failed on '" + co.resource +
                      "': " + result.error;
      return outcome;
    }
    outcome.handles.push_back(std::move(result.handle));
  }
  // A manager may revoke an earlier leg while a later one is still being
  // set up (enforce() side effects, injected preemption). All-or-nothing
  // also covers that window: if any leg failed underneath us, roll back
  // the survivors instead of returning a partially-dead set.
  for (const auto& held : outcome.handles) {
    if (held->state() != ReservationState::kFailed) continue;
    for (auto& other : outcome.handles) cancel(other);  // no-op on failed
    outcome.error = "co-reservation revoked mid-setup: " +
                    held->failureReason();
    outcome.handles.clear();
    return outcome;
  }
  return outcome;
}

bool Gara::modify(const ReservationHandle& handle, double new_amount,
                  double new_bucket_divisor) {
  assert(handle != nullptr);
  const auto state = handle->state();
  if (isTerminal(state)) {
    MGQ_LOG(kWarn) << "gara: modify refused on reservation " << handle->id()
                   << ": state is " << reservationStateName(state);
    return false;
  }
  auto request = handle->request();
  request.amount = new_amount;
  if (new_bucket_divisor > 0.0) request.bucket_divisor = new_bucket_divisor;
  if (auto error = handle->manager().validate(request); !error.empty()) {
    return false;
  }
  if (!handle->manager().slots().modify(handle->slot(), request.start,
                                        endOf(request), request.amount)) {
    return false;
  }
  handle->updateRequest(request);
  if (state == ReservationState::kActive) {
    handle->manager().reconfigure(*handle);
  }
  countEvent("gara.modified");
  traceEvent("modified", handle->id(), new_amount,
             resourceNameOf(&handle->manager()));
  notifyLifecycle("modified", handle);
  updateUtilization(handle->manager());
  return true;
}

void Gara::cancel(const ReservationHandle& handle) {
  assert(handle != nullptr);
  if (isTerminal(handle->state())) return;
  retire(handle, ReservationState::kCancelled);
}

void Gara::fail(const ReservationHandle& handle, const std::string& reason) {
  assert(handle != nullptr);
  if (isTerminal(handle->state())) return;
  handle->failure_reason_ = reason;
  MGQ_LOG(kWarn) << "gara: reservation " << handle->id()
                 << " failed: " << reason;
  retire(handle, ReservationState::kFailed);
}

ReservationHandle Gara::findLive(std::uint64_t id) const {
  const auto it = live_.find(id);
  return it == live_.end() ? nullptr : it->second.lock();
}

std::vector<ReservationHandle> Gara::liveHandles() const {
  std::vector<ReservationHandle> handles;
  handles.reserve(live_.size());
  for (const auto& [id, weak] : live_) {
    if (auto handle = weak.lock()) handles.push_back(std::move(handle));
  }
  std::sort(handles.begin(), handles.end(),
            [](const ReservationHandle& a, const ReservationHandle& b) {
              return a->id() < b->id();
            });
  return handles;
}

void Gara::retire(const ReservationHandle& handle,
                  ReservationState terminal) {
  if (handle->state() == ReservationState::kActive) {
    handle->manager().release(*handle);
  }
  handle->manager().slots().remove(handle->slot());
  live_.erase(handle->id());
  switch (terminal) {
    case ReservationState::kExpired:
      countEvent("gara.expired");
      break;
    case ReservationState::kCancelled:
      countEvent("gara.cancelled");
      break;
    case ReservationState::kFailed:
      countEvent("gara.failed");
      break;
    default:
      break;
  }
  traceEvent(reservationStateName(terminal), handle->id(),
             handle->request().amount,
             terminal == ReservationState::kFailed ? handle->failureReason()
                 : resourceNameOf(&handle->manager()));
  // Listeners (journal, leases) see the terminal op after enforcement is
  // released but before the state-change callbacks run, so journal-live
  // always covers enforced ids at every observable instant.
  notifyLifecycle(reservationStateName(terminal), handle,
                  terminal == ReservationState::kFailed
                      ? handle->failureReason()
                      : std::string{});
  updateUtilization(handle->manager());
  handle->transition(terminal);
}

void Gara::activate(const ReservationHandle& handle) {
  handle->manager().enforce(*handle);
  countEvent("gara.activated");
  traceEvent("activated", handle->id(), handle->request().amount,
             resourceNameOf(&handle->manager()));
  notifyLifecycle("activated", handle);
  handle->transition(ReservationState::kActive);
  const auto end = endOf(handle->request());
  if (handle->request().duration < sim::Duration::infinite()) {
    const auto epoch = epoch_;
    sim_.scheduleAt(end, [this, handle, epoch] {
      if (epoch == epoch_ && handle->state() == ReservationState::kActive) {
        expire(handle);
      }
    });
  }
}

void Gara::armTimers(const ReservationHandle& handle) {
  const auto epoch = epoch_;
  if (handle->state() == ReservationState::kPending) {
    if (handle->request().start <= sim_.now()) {
      activate(handle);
    } else {
      sim_.scheduleAt(handle->request().start, [this, handle, epoch] {
        if (epoch == epoch_ &&
            handle->state() == ReservationState::kPending) {
          activate(handle);
        }
      });
    }
    return;
  }
  if (handle->state() != ReservationState::kActive) return;
  if (handle->request().duration >= sim::Duration::infinite()) return;
  const auto end = endOf(handle->request());
  if (end <= sim_.now()) {
    expire(handle);
    return;
  }
  sim_.scheduleAt(end, [this, handle, epoch] {
    if (epoch == epoch_ && handle->state() == ReservationState::kActive) {
      expire(handle);
    }
  });
}

void Gara::addLifecycleListener(LifecycleListener listener) {
  lifecycle_listeners_.push_back(std::move(listener));
}

void Gara::notifyLifecycle(const char* op, const ReservationHandle& handle,
                           const std::string& detail) {
  if (lifecycle_listeners_.empty()) return;
  const auto resource = resourceNameOf(&handle->manager());
  for (const auto& listener : lifecycle_listeners_) {
    listener(op, handle, resource, detail);
  }
}

void Gara::crash() {
  ++epoch_;
  live_.clear();
  countEvent("gara.crashes");
  traceEvent("crashed", 0, 0.0, "control plane crashed: live index dropped");
  MGQ_LOG(kWarn) << "gara: simulated crash (epoch " << epoch_ << ")";
}

void Gara::adopt(const ReservationHandle& handle) {
  assert(handle != nullptr);
  if (isTerminal(handle->state())) return;
  live_[handle->id()] = handle;
  countEvent("gara.adopted");
  traceEvent("adopted", handle->id(), handle->request().amount,
             resourceNameOf(&handle->manager()));
  notifyLifecycle("adopted", handle);
  armTimers(handle);
}

void Gara::restartWithNextId(std::uint64_t next_id) {
  next_reservation_id_ = std::max(next_reservation_id_, next_id);
}

void Gara::expire(const ReservationHandle& handle) {
  retire(handle, ReservationState::kExpired);
}

}  // namespace mgq::gara
