// Failure proxy around a resource manager (fault injection).
//
// Wraps a concrete manager and, per fault plan, (a) denies new requests
// while the manager is "unreachable" (an outage window), (b) denies the
// next N requests (transient flakiness), and (c) revokes currently-active
// reservations mid-lifetime (capacity preemption) by reporting failures
// upstream through the listener Gara installed.
//
// Register the *proxy* with Gara in place of the wrapped manager; the
// proxy runs admission on its own slot table (mirroring the wrapped
// capacity) and forwards all device programming to the wrapped manager.
#pragma once

#include <string>
#include <unordered_set>

#include "gara/resource_manager.hpp"
#include "sim/fault_injector.hpp"

namespace mgq::gara {

class FlakyResourceManager : public ResourceManager {
 public:
  explicit FlakyResourceManager(ResourceManager& inner)
      : ResourceManager(inner.slots().capacity()), inner_(&inner) {}

  std::string type() const override { return inner_->type() + "+flaky"; }
  std::string validate(const ReservationRequest& request) const override;
  void enforce(Reservation& reservation) override;
  void release(Reservation& reservation) override;
  void reconfigure(Reservation& reservation) override {
    inner_->reconfigure(reservation);
  }
  /// Heartbeat probes fail while the injected outage is active.
  bool reachable() const override { return !outage_; }
  std::vector<std::uint64_t> enforcedIds() const override;

  // --- fault controls ----------------------------------------------------
  /// While in outage, every validate() fails ("manager unreachable").
  void setOutage(bool outage) { outage_ = outage; }
  bool outage() const { return outage_; }

  /// Denies the next `n` requests, then recovers.
  void denyNext(int n) { deny_next_ = n; }

  /// Revokes every currently-active reservation: enforcement is torn down
  /// and each reservation transitions to kFailed with `reason`.
  void revokeActive(const std::string& reason);

  std::size_t activeCount() const { return active_.size(); }

  /// Fault-injector adapter: down = outage + revoke all, up = restore.
  sim::FaultTarget faultTarget();

 private:
  ResourceManager* inner_;
  bool outage_ = false;
  mutable int deny_next_ = 0;
  std::unordered_set<std::uint64_t> active_;
};

}  // namespace mgq::gara
