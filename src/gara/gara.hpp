// The GARA facade: uniform immediate/advance reservation, co-reservation,
// modification, cancellation, and monitoring over registered resource
// managers (paper §4.2).
//
// Timer-based callbacks "generate call-outs to resource-specific routines
// to enable and cancel reservations": an admitted reservation is Pending
// until its start time (enforcement installed by a timer), Active until
// its end time, then Expired.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gara/reservation.hpp"
#include "gara/resource_manager.hpp"
#include "sim/simulator.hpp"

namespace mgq::obs {
class MetricsRegistry;
class TraceBuffer;
}  // namespace mgq::obs

namespace mgq::gara {

class Gara {
 public:
  explicit Gara(sim::Simulator& sim) : sim_(sim) {}
  Gara(const Gara&) = delete;
  Gara& operator=(const Gara&) = delete;

  /// Registers a manager under a resource name (e.g. "net-forward",
  /// "cpu-sender"). The manager must outlive the Gara instance.
  /// Re-registering a name replaces the previous manager — that is how a
  /// fault proxy (gara::FlakyResourceManager) interposes on an existing
  /// resource; reservations already admitted through the old manager keep
  /// their handles and retire through it.
  void registerManager(const std::string& name, ResourceManager& manager);
  ResourceManager* findManager(const std::string& name);
  std::vector<std::string> resourceNames() const;

  /// Requests a reservation (immediate when request.start <= now). On
  /// success the outcome carries a handle; on rejection, a reason.
  ReserveOutcome reserve(const std::string& resource,
                         ReservationRequest request);

  /// All-or-nothing reservation across several resources — the paper's
  /// end-to-end network + CPU co-reservation. On failure nothing is held.
  struct CoRequest {
    std::string resource;
    ReservationRequest request;
  };
  struct CoOutcome {
    std::vector<ReservationHandle> handles;
    std::string error;
    explicit operator bool() const { return error.empty(); }
  };
  CoOutcome coReserve(const std::vector<CoRequest>& requests);

  /// Changes the amount (and bucket sizing) of a pending or active
  /// reservation; returns false if the new amount does not fit.
  bool modify(const ReservationHandle& handle, double new_amount,
              double new_bucket_divisor = 0.0 /* keep */);

  /// Cancels a pending or active reservation; enforcement is removed
  /// immediately. Idempotent.
  void cancel(const ReservationHandle& handle);

  /// Marks a reservation as failed: enforcement lost mid-lifetime (the
  /// attachment interface went down, the manager revoked capacity, ...).
  /// Removes enforcement, frees the slot, records `reason`, and fires the
  /// onStateChange callbacks with kFailed. No-op on terminal states.
  /// Managers reach this through the failure listener installed at
  /// registration; holders may also call it directly.
  void fail(const ReservationHandle& handle, const std::string& reason);

  /// Looks up a live (non-terminal) reservation by id; nullptr otherwise.
  ReservationHandle findLive(std::uint64_t id) const;

  /// Every live (non-terminal) reservation, sorted by id — a deterministic
  /// view for invariant monitors and chaos churn (cancel/modify storms).
  std::vector<ReservationHandle> liveHandles() const;

  /// Polling-style monitoring, as in the paper's API.
  ReservationState status(const ReservationHandle& handle) const {
    return handle->state();
  }

  sim::Simulator& simulator() { return sim_; }

  /// Wires reservation lifecycle events into the observability layer:
  /// per-outcome counters ("gara.requests", "gara.admitted", ...), a
  /// per-resource slot-utilization gauge, and one trace event per state
  /// transition (requested → admitted → activated → expired / cancelled /
  /// failed, with rejection/failure reasons). Either pointer may be null;
  /// both must outlive this Gara. The trace buffer's clock is bound to
  /// this Gara's simulator.
  void attachObservability(obs::MetricsRegistry* metrics,
                           obs::TraceBuffer* trace);

  /// Lifecycle listeners observe every reservation state event, in the
  /// same order the trace buffer sees them: `op` is one of "admitted",
  /// "activated", "modified", "adopted", "expired", "cancelled",
  /// "failed"; `detail` carries the failure reason for "failed" events.
  /// The resilience layer's StateJournal and LeaseManager subscribe here,
  /// which keeps gara/ free of any dependency on resil/.
  using LifecycleListener =
      std::function<void(const char* op, const ReservationHandle& handle,
                         const std::string& resource,
                         const std::string& detail)>;
  void addLifecycleListener(LifecycleListener listener);

  /// Simulated control-plane crash: this Gara forgets every live
  /// reservation (amnesia) but the object itself stays put — destroying
  /// it mid-run would dangle suspended coroutines and scheduled timers.
  /// Enforcement already installed at the managers is deliberately left
  /// in place: that is exactly the zombie state leases and the
  /// Reconciler exist to clean up. Pending/active timers armed before
  /// the crash are epoch-guarded and become no-ops.
  void crash();

  /// Re-adopts a reservation handle that survived a crash() (e.g. held
  /// by the lease manager or replayed from the journal): re-inserts it
  /// into the live index and re-arms its activation/expiry timers.
  /// No-op on terminal handles.
  void adopt(const ReservationHandle& handle);

  /// Restart after crash(): resume id allocation at `next_id` (typically
  /// journal.maxReservationId() + 1) so replayed history and new
  /// admissions never collide. Never moves the counter backwards.
  void restartWithNextId(std::uint64_t next_id);

  /// Crash epoch — bumped by crash(); timers armed under an older epoch
  /// do nothing when they fire.
  std::uint64_t epoch() const { return epoch_; }

 private:
  void activate(const ReservationHandle& handle);
  void expire(const ReservationHandle& handle);
  void retire(const ReservationHandle& handle, ReservationState terminal);
  void countEvent(const char* counter);
  void traceEvent(const char* event, std::uint64_t id, double value,
                  const std::string& detail);
  void notifyLifecycle(const char* op, const ReservationHandle& handle,
                       const std::string& detail = {});
  void armTimers(const ReservationHandle& handle);
  void updateUtilization(const ResourceManager& manager);
  std::string resourceNameOf(const ResourceManager* manager) const;
  static sim::TimePoint endOf(const ReservationRequest& r) {
    return r.start + r.duration;
  }

  sim::Simulator& sim_;
  std::map<std::string, ResourceManager*> managers_;
  /// Live (non-terminal) reservations, so manager failure notifications —
  /// which carry only an id — can be resolved back to a handle.
  std::unordered_map<std::uint64_t, std::weak_ptr<Reservation>> live_;
  std::uint64_t next_reservation_id_ = 1;
  std::uint64_t epoch_ = 0;
  std::vector<LifecycleListener> lifecycle_listeners_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceBuffer* trace_ = nullptr;
};

}  // namespace mgq::gara
