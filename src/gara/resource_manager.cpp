#include "gara/resource_manager.hpp"

#include <algorithm>
#include <cassert>

namespace mgq::gara {

// ---------------------------------------------------------------------------
// NetworkResourceManager
// ---------------------------------------------------------------------------

std::string NetworkResourceManager::validate(
    const ReservationRequest& request) const {
  if (request.amount <= 0.0) return "network reservation needs amount > 0";
  if (request.bucket_divisor <= 0.0) return "bucket divisor must be > 0";
  const net::Interface* edge =
      request.attach != nullptr ? request.attach : edge_;
  if (!edge->isUp()) {
    return "attachment interface '" + edge->name() + "' is down";
  }
  return {};
}

void NetworkResourceManager::enforce(Reservation& reservation) {
  auto& edge = attachPoint(reservation, *edge_);
  const auto& req = reservation.request();
  auto& sim = edge.owner().simulator();
  reservation.bucket = std::make_shared<net::TokenBucket>(
      sim, req.amount,
      net::TokenBucket::depthForRate(req.amount, req.bucket_divisor));
  net::MarkingRule rule;
  rule.match = req.flow;
  rule.mark = req.mark;
  rule.bucket = reservation.bucket;
  rule.out_action = req.out_action;
  reservation.enforcement_rule_id = edge.ingressPolicy().addRule(rule);
  active_[reservation.id()] = &edge;
  watch(edge);
}

void NetworkResourceManager::release(Reservation& reservation) {
  active_.erase(reservation.id());
  if (reservation.enforcement_rule_id == 0) return;
  auto& edge = attachPoint(reservation, *edge_);
  edge.ingressPolicy().removeRule(reservation.enforcement_rule_id);
  reservation.enforcement_rule_id = 0;
  reservation.bucket.reset();
}

std::vector<std::uint64_t> NetworkResourceManager::enforcedIds() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(active_.size());
  for (const auto& [id, edge] : active_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t NetworkResourceManager::activeOn(
    const net::Interface& iface) const {
  std::size_t count = 0;
  for (const auto& [id, edge] : active_) {
    if (edge == &iface) ++count;
  }
  return count;
}

void NetworkResourceManager::watch(net::Interface& iface) {
  if (!watched_.insert(&iface).second) return;
  iface.onLinkStateChange([this](net::Interface& which, bool up) {
    if (!up) onAttachmentDown(which);
  });
}

void NetworkResourceManager::onAttachmentDown(net::Interface& iface) {
  // reportFailure() re-enters release() (Gara removes enforcement), which
  // mutates active_ — collect the victims first.
  std::vector<std::uint64_t> victims;
  for (const auto& [id, edge] : active_) {
    if (edge == &iface) victims.push_back(id);
  }
  for (const auto id : victims) {
    reportFailure(id, "attachment interface '" + iface.name() + "' went down");
  }
}

// ---------------------------------------------------------------------------
// CpuResourceManager
// ---------------------------------------------------------------------------

std::string CpuResourceManager::validate(
    const ReservationRequest& request) const {
  if (request.amount <= 0.0 || request.amount > 1.0) {
    return "cpu reservation amount must be a fraction in (0, 1]";
  }
  if (request.cpu_job == 0) return "cpu reservation needs a job id";
  return {};
}

void CpuResourceManager::enforce(Reservation& reservation) {
  const auto& req = reservation.request();
  const bool ok = cpu_->setReservation(req.cpu_job, req.amount);
  // The slot table capacity mirrors the scheduler's admission bound, so
  // this cannot fail unless reservations were made behind GARA's back.
  assert(ok && "scheduler rejected an admitted CPU reservation");
  (void)ok;
  enforced_.insert(reservation.id());
}

void CpuResourceManager::release(Reservation& reservation) {
  cpu_->clearReservation(reservation.request().cpu_job);
  enforced_.erase(reservation.id());
}

std::vector<std::uint64_t> CpuResourceManager::enforcedIds() const {
  return {enforced_.begin(), enforced_.end()};
}

}  // namespace mgq::gara
