#include "gara/bandwidth_broker.hpp"

#include <cassert>

#include "util/logging.hpp"

namespace mgq::gara {

void BandwidthBroker::definePath(const std::string& name,
                                 std::vector<std::string> resources) {
  assert(!resources.empty());
  for (const auto& resource : resources) {
    (void)resource;  // used by the assert below only
    assert(gara_->findManager(resource) != nullptr &&
           "path references an unregistered resource");
  }
  paths_[name] = std::move(resources);
}

std::vector<std::string> BandwidthBroker::pathNames() const {
  std::vector<std::string> names;
  names.reserve(paths_.size());
  for (const auto& [name, resources] : paths_) names.push_back(name);
  return names;
}

BandwidthBroker::PathReservation BandwidthBroker::requestPath(
    const std::string& path, const ReservationRequest& request) {
  PathReservation result;
  const auto it = paths_.find(path);
  if (it == paths_.end()) {
    result.error = "unknown path '" + path + "'";
    return result;
  }
  std::vector<Gara::CoRequest> legs;
  legs.reserve(it->second.size());
  for (const auto& resource : it->second) {
    legs.push_back({resource, request});
  }
  auto outcome = gara_->coReserve(legs);
  if (!outcome) {
    result.error = outcome.error;
    return result;
  }
  result.handles = std::move(outcome.handles);
  return result;
}

void BandwidthBroker::cancel(PathReservation& reservation) {
  for (auto& handle : reservation.handles) gara_->cancel(handle);
  reservation.handles.clear();
}

bool BandwidthBroker::modify(PathReservation& reservation,
                             double new_amount) {
  std::vector<double> previous;
  previous.reserve(reservation.handles.size());
  for (std::size_t i = 0; i < reservation.handles.size(); ++i) {
    auto& handle = reservation.handles[i];
    previous.push_back(handle->request().amount);
    if (!gara_->modify(handle, new_amount)) {
      // Roll back the legs already grown/shrunk. Restoring a previously
      // held amount normally cannot fail — but a leg may have expired or
      // been revoked underneath us while the forward pass ran. That leg
      // no longer holds capacity, so the path is broken: fail it loudly
      // instead of leaving a silently inconsistent reservation.
      for (std::size_t j = 0; j < i; ++j) {
        auto& leg = reservation.handles[j];
        if (gara_->modify(leg, previous[j])) continue;
        MGQ_LOG(kError) << "bandwidth broker: rollback of leg " << j
                        << " (reservation " << leg->id() << ") to "
                        << previous[j]
                        << " bps failed; failing the leg (state: "
                        << reservationStateName(leg->state()) << ")";
        gara_->fail(leg, "path modify rollback failed");
      }
      return false;
    }
  }
  return true;
}

}  // namespace mgq::gara
