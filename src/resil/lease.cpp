#include "resil/lease.hpp"

#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mgq::resil {

LeaseManager::LeaseManager(sim::Simulator& sim, gara::Gara& gara)
    : LeaseManager(sim, gara, Config{}) {}

LeaseManager::LeaseManager(sim::Simulator& sim, gara::Gara& gara,
                           Config config)
    : sim_(sim), gara_(gara), config_(config) {
  if (config_.renew_fraction <= 0.0 || config_.renew_fraction >= 1.0) {
    config_.renew_fraction = 0.5;
  }
  if (config_.grace < sim::Duration::zero()) {
    config_.grace = sim::Duration::zero();
  }
  gara_.addLifecycleListener([this](const char* op,
                                    const gara::ReservationHandle& handle,
                                    const std::string&, const std::string&) {
    onLifecycle(op, handle);
  });
}

void LeaseManager::attachObservability(obs::MetricsRegistry* metrics,
                                       obs::TraceBuffer* trace) {
  metrics_ = metrics;
  trace_ = trace;
}

void LeaseManager::count(const char* counter) {
  if (metrics_ != nullptr) metrics_->counter(counter).inc();
}

void LeaseManager::onLifecycle(const char* op,
                               const gara::ReservationHandle& handle) {
  const std::string name = op;
  if (name == "admitted" || name == "adopted") {
    startLease(handle);
  } else if (name == "expired" || name == "cancelled" || name == "failed") {
    leases_.erase(handle->id());
  }
}

void LeaseManager::startLease(const gara::ReservationHandle& handle) {
  auto duration = handle->request().lease;
  if (duration <= sim::Duration::zero()) duration = config_.default_duration;
  if (duration <= sim::Duration::zero()) return;  // unleased

  const auto id = handle->id();
  const bool fresh = leases_.count(id) == 0;
  auto& lease = leases_[id];
  lease.handle = handle;
  lease.duration = duration;
  lease.deadline = sim_.now() + duration;
  if (fresh) {
    count("resil.lease.granted");
    scheduleRenewal(id, duration);
    armGuard(id, lease.deadline);
  }
}

void LeaseManager::scheduleRenewal(std::uint64_t id, sim::Duration duration) {
  const auto tick = duration * config_.renew_fraction;
  sim_.schedule(tick, [this, id] {
    const auto it = leases_.find(id);
    if (it == leases_.end()) return;  // lease retired; stop ticking
    if (!suspended_) {
      it->second.deadline = sim_.now() + it->second.duration;
      count("resil.lease.renewals");
    }
    // Keep ticking even while suspended so renewals pick straight back up
    // when the holder returns.
    scheduleRenewal(id, it->second.duration);
  });
}

void LeaseManager::armGuard(std::uint64_t id, sim::TimePoint deadline) {
  sim_.scheduleAt(deadline + config_.grace, [this, id] {
    const auto it = leases_.find(id);
    if (it == leases_.end()) return;
    if (sim_.now() < it->second.deadline + config_.grace) {
      armGuard(id, it->second.deadline);  // renewed since; chase it
      return;
    }
    // Renewals stopped: hard-expire enforcement. Gara::fail retires the
    // reservation (frees the slot, releases device programming) and our
    // lifecycle listener erases the lease.
    auto handle = it->second.handle;
    count("resil.lease.expired");
    if (trace_ != nullptr) {
      trace_->record("resil", "lease_expired", handle->id(),
                     handle->request().amount,
                     "lease deadline passed without renewal");
    }
    gara_.fail(handle, "lease_expired");
    leases_.erase(id);  // in case the handle was already terminal
  });
}

void LeaseManager::suspendRenewals() { suspended_ = true; }

void LeaseManager::resumeRenewals() {
  suspended_ = false;
  for (auto& [id, lease] : leases_) {
    lease.deadline = sim_.now() + lease.duration;
    count("resil.lease.renewals");
  }
}

std::vector<LeaseManager::LeaseInfo> LeaseManager::leases() const {
  std::vector<LeaseInfo> out;
  out.reserve(leases_.size());
  for (const auto& [id, lease] : leases_) {
    out.push_back({lease.handle, lease.deadline, lease.duration});
  }
  return out;  // std::map: sorted by reservation id
}

}  // namespace mgq::resil
