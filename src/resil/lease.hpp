// Reservation leases (cs/0606076-style expiry/renewal semantics).
//
// Every leased reservation must be renewed by its holder within the lease
// window; when renewals stop — the holding control plane crashed or is
// partitioned — a guard timer hard-expires enforcement: the slot is freed
// and Gara::fail fires with reason "lease_expired". Renewals are driven by
// this manager on the holder's behalf; a simulated agent crash suspends
// them (the holder is gone), which is precisely what lets the rest of the
// system outlive its own controller instead of serving zombie
// reservations forever.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "gara/gara.hpp"
#include "sim/simulator.hpp"

namespace mgq::obs {
class MetricsRegistry;
class TraceBuffer;
}  // namespace mgq::obs

namespace mgq::resil {

class LeaseManager {
 public:
  struct Config {
    /// Lease applied to reservations that do not carry their own
    /// `ReservationRequest::lease`; zero leaves those unleased.
    sim::Duration default_duration = sim::Duration::zero();
    /// Renewals fire every duration * renew_fraction (must be < 1 so a
    /// healthy holder always renews before expiry).
    double renew_fraction = 0.5;
    /// Slack past the deadline before the guard hard-expires — absorbs
    /// same-tick renewal/guard ordering.
    sim::Duration grace = sim::Duration::millis(250);
  };

  /// Subscribes to `gara`'s lifecycle events: admitted/adopted
  /// reservations with a lease start being tracked, terminal ones drop
  /// their lease. Construct before reservations are made and after the
  /// journal is attached (listeners fire in attach order).
  LeaseManager(sim::Simulator& sim, gara::Gara& gara, Config config);
  LeaseManager(sim::Simulator& sim, gara::Gara& gara);
  LeaseManager(const LeaseManager&) = delete;
  LeaseManager& operator=(const LeaseManager&) = delete;

  void attachObservability(obs::MetricsRegistry* metrics,
                           obs::TraceBuffer* trace);

  /// Holder crashed: stop extending deadlines. Leases then hard-expire
  /// after at most duration + grace.
  void suspendRenewals();
  /// Holder restarted: every surviving lease is renewed immediately and
  /// the periodic renewals resume.
  void resumeRenewals();
  bool suspended() const { return suspended_; }

  struct LeaseInfo {
    gara::ReservationHandle handle;
    sim::TimePoint deadline;
    sim::Duration duration;
  };
  /// Current leases sorted by reservation id — the Reconciler's handle
  /// registry (lease-held handles survive a Gara crash) and the chaos
  /// lease-safety invariant's view.
  std::vector<LeaseInfo> leases() const;
  std::size_t leaseCount() const { return leases_.size(); }
  const Config& config() const { return config_; }

 private:
  struct Lease {
    gara::ReservationHandle handle;
    sim::TimePoint deadline;
    sim::Duration duration;
  };

  void onLifecycle(const char* op, const gara::ReservationHandle& handle);
  void startLease(const gara::ReservationHandle& handle);
  void scheduleRenewal(std::uint64_t id, sim::Duration duration);
  void armGuard(std::uint64_t id, sim::TimePoint deadline);
  void count(const char* counter);

  sim::Simulator& sim_;
  gara::Gara& gara_;
  Config config_;
  std::map<std::uint64_t, Lease> leases_;  // ordered: deterministic sweeps
  bool suspended_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceBuffer* trace_ = nullptr;
};

}  // namespace mgq::resil
