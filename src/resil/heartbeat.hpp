// Heartbeats and failure detection between the QoS agent and its
// registered resource managers.
//
// The monitor probes each watched peer on a fixed interval and keeps a
// phi-accrual-style suspicion score: phi = -log10 P(silence this long),
// under an exponential model fitted to the observed inter-arrival times
// of successful probes. Crossing the configurable threshold fires the
// peer's down handler exactly once per outage; a successful probe after
// an outage re-arms it. This turns a silently dead per-domain manager
// into an explicit manager-down event for the existing RecoveryPolicy,
// instead of waiting for the next reservation request to fail.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "sim/simulator.hpp"

namespace mgq::obs {
class MetricsRegistry;
class TraceBuffer;
}  // namespace mgq::obs

namespace mgq::gara {
class Gara;
}

namespace mgq::resil {

class HeartbeatMonitor {
 public:
  struct Config {
    sim::Duration interval = sim::Duration::millis(250);
    /// Suspicion threshold; phi = 2 means "this silence had probability
    /// 1e-2 under the learned inter-arrival distribution".
    double phi_threshold = 2.0;
    /// Sliding window of successful-probe inter-arrival samples.
    std::size_t window = 16;
  };

  /// Probe the peer's control channel; true = reachable now.
  using Probe = std::function<bool()>;
  using DownHandler = std::function<void(const std::string& name, double phi)>;

  HeartbeatMonitor(sim::Simulator& sim, Config config);
  explicit HeartbeatMonitor(sim::Simulator& sim);
  HeartbeatMonitor(const HeartbeatMonitor&) = delete;
  HeartbeatMonitor& operator=(const HeartbeatMonitor&) = delete;

  void attachObservability(obs::MetricsRegistry* metrics,
                           obs::TraceBuffer* trace);

  /// Starts probing `name` every interval. The down handler fires once
  /// when phi crosses the threshold and re-arms after recovery.
  void watch(const std::string& name, Probe probe, DownHandler on_down);

  /// Agent crashed: probing pauses (nobody is sending heartbeats).
  void suspend();
  /// Agent restarted: probing resumes with a fresh silence baseline so
  /// the downtime itself is not counted as peer silence.
  void resume();
  bool suspended() const { return suspended_; }

  /// Current suspicion score for a watched peer (0 when unknown).
  double phi(const std::string& name) const;
  bool suspected(const std::string& name) const;
  std::size_t watchedCount() const { return peers_.size(); }
  const Config& config() const { return config_; }

 private:
  struct Peer {
    Probe probe;
    DownHandler on_down;
    sim::TimePoint last_ok;
    std::deque<double> intervals;  // seconds between successful probes
    bool down_reported = false;
  };

  void tick(const std::string& name);
  double phiOf(const Peer& peer) const;
  double meanIntervalOf(const Peer& peer) const;
  void count(const char* counter);

  sim::Simulator& sim_;
  Config config_;
  std::map<std::string, Peer> peers_;
  bool suspended_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceBuffer* trace_ = nullptr;
};

/// Wires a heartbeat probe for every manager registered with `gara`:
/// probe = ResourceManager::reachable(), down handler = fail that
/// manager's live reservations with a "manager suspected down" reason —
/// which drives the QoS agent's normal failure-recovery path.
void attachManagerHeartbeats(HeartbeatMonitor& monitor, gara::Gara& gara);

}  // namespace mgq::resil
