#include "resil/reconciler.hpp"

#include <map>
#include <set>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mgq::resil {

void Reconciler::attachObservability(obs::MetricsRegistry* metrics,
                                     obs::TraceBuffer* trace) {
  metrics_ = metrics;
  trace_ = trace;
}

void Reconciler::count(const char* counter, int n) {
  if (metrics_ == nullptr) return;
  for (int i = 0; i < n; ++i) metrics_->counter(counter).inc();
}

void Reconciler::trace(const char* event, std::uint64_t id, double value,
                       const std::string& detail) {
  if (trace_ != nullptr) trace_->record("resil", event, id, value, detail);
}

Reconciler::Report Reconciler::reconcile(UnclaimedPolicy policy) {
  Report report;
  count("resil.reconcile.runs");

  // Handle registry: Gara's live index plus lease-held survivors (the
  // only objects that outlive a Gara crash).
  std::map<std::uint64_t, gara::ReservationHandle> handles;
  for (const auto& handle : gara_.liveHandles()) {
    handles[handle->id()] = handle;
  }
  if (leases_ != nullptr) {
    for (const auto& lease : leases_->leases()) {
      handles.emplace(lease.handle->id(), lease.handle);
    }
  }

  // 1. Zombie enforcement: a manager enforces an id the journal says is
  //    terminal. Repair by failing the surviving handle (release +
  //    slot-free); without a handle we can only count the divergence.
  for (const auto& resource : gara_.resourceNames()) {
    auto* manager = gara_.findManager(resource);
    if (manager == nullptr) continue;
    for (const auto id : manager->enforcedIds()) {
      if (journal_.isLive(id)) continue;
      const auto it = handles.find(id);
      if (it == handles.end() || gara::isTerminal(it->second->state())) {
        ++report.unrepairable;
        count("resil.reconcile.unrepairable");
        trace("zombie_unrepairable", id, 0.0, resource);
        continue;
      }
      ++report.zombies_failed;
      count("resil.reconcile.zombies");
      trace("zombie_failed", id, it->second->request().amount, resource);
      gara_.fail(it->second, "reconcile: zombie enforcement");
    }
  }

  // 2. Unclaimed journal-live reservations: live on the record, unknown
  //    to the (restarted) Gara.
  for (const auto& live : journal_.liveReservations()) {
    if (gara_.findLive(live.id) != nullptr) continue;  // claimed: fine
    const auto it = handles.find(live.id);
    const bool has_handle =
        it != handles.end() && !gara::isTerminal(it->second->state());
    if (!has_handle) {
      // No surviving object: correct the record so the journal converges
      // (the slot sweep below frees any leftover claim).
      journal_.forceRetire(live.id, "reconcile: no surviving handle");
      ++report.unrepairable;
      count("resil.reconcile.unrepairable");
      trace("unclaimed_retired", live.id, live.amount, live.resource);
      continue;
    }
    if (policy == UnclaimedPolicy::kAdopt) {
      ++report.unclaimed_adopted;
      count("resil.reconcile.adopted");
      trace("unclaimed_adopted", live.id, live.amount, live.resource);
      gara_.adopt(it->second);
    } else {
      ++report.unclaimed_failed;
      count("resil.reconcile.refreshed");
      trace("unclaimed_failed", live.id, live.amount, live.resource);
      gara_.fail(it->second, "reconcile: lost across crash restart");
    }
  }

  // 3. Orphaned slot-table claims: slots owned by no journal-live
  //    reservation (the fails above already updated journal-live).
  for (const auto& resource : gara_.resourceNames()) {
    auto* manager = gara_.findManager(resource);
    if (manager == nullptr) continue;
    std::set<gara::SlotId> owned;
    for (const auto& live : journal_.liveReservations()) {
      if (live.resource == resource) owned.insert(live.slot);
    }
    for (const auto slot : manager->slots().ids()) {
      if (owned.count(slot) != 0) continue;
      manager->slots().remove(slot);
      ++report.orphan_slots_removed;
      count("resil.reconcile.orphan_slots");
      trace("orphan_slot_removed", slot, 0.0, resource);
    }
  }

  return report;
}

}  // namespace mgq::resil
