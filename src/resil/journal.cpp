#include "resil/journal.hpp"

#include <string>

namespace mgq::resil {

const char* journalOpName(JournalOp op) {
  switch (op) {
    case JournalOp::kAdmitted:
      return "admitted";
    case JournalOp::kActivated:
      return "activated";
    case JournalOp::kModified:
      return "modified";
    case JournalOp::kAdopted:
      return "adopted";
    case JournalOp::kExpired:
      return "expired";
    case JournalOp::kCancelled:
      return "cancelled";
    case JournalOp::kFailed:
      return "failed";
    case JournalOp::kQosPut:
      return "qos_put";
    case JournalOp::kQosRelease:
      return "qos_release";
    case JournalOp::kCrash:
      return "crash";
    case JournalOp::kRestart:
      return "restart";
  }
  return "?";
}

namespace {

bool lifecycleOpFromName(const std::string& name, JournalOp& op) {
  if (name == "admitted") op = JournalOp::kAdmitted;
  else if (name == "activated") op = JournalOp::kActivated;
  else if (name == "modified") op = JournalOp::kModified;
  else if (name == "adopted") op = JournalOp::kAdopted;
  else if (name == "expired") op = JournalOp::kExpired;
  else if (name == "cancelled") op = JournalOp::kCancelled;
  else if (name == "failed") op = JournalOp::kFailed;
  else return false;
  return true;
}

}  // namespace

void StateJournal::attach(gara::Gara& gara) {
  gara.addLifecycleListener([this](const char* op_name,
                                   const gara::ReservationHandle& handle,
                                   const std::string& resource,
                                   const std::string& detail) {
    JournalOp op;
    if (!lifecycleOpFromName(op_name, op)) return;
    JournalRecord record;
    record.op = op;
    record.reservation_id = handle->id();
    record.resource = resource;
    record.amount = handle->request().amount;
    record.slot = handle->slot();
    record.detail = detail;
    append(std::move(record));
  });
}

void StateJournal::append(JournalRecord record) {
  record.t_seconds = sim_.now().toSeconds();
  if (record.reservation_id > max_id_) max_id_ = record.reservation_id;
  applyReservationOp(record);
  records_.push_back(std::move(record));
}

void StateJournal::applyReservationOp(const JournalRecord& record) {
  switch (record.op) {
    case JournalOp::kAdmitted:
    case JournalOp::kActivated:
    case JournalOp::kModified:
    case JournalOp::kAdopted: {
      auto& live = live_[record.reservation_id];
      live.id = record.reservation_id;
      live.resource = record.resource;
      live.amount = record.amount;
      live.slot = record.slot;
      break;
    }
    case JournalOp::kExpired:
    case JournalOp::kCancelled:
    case JournalOp::kFailed:
      live_.erase(record.reservation_id);
      break;
    case JournalOp::kQosPut: {
      auto& intent = intents_[{record.context, record.world_rank}];
      intent.context = record.context;
      intent.world_rank = record.world_rank;
      intent.qos_class = record.qos_class;
      intent.bandwidth_kbps = record.bandwidth_kbps;
      intent.max_message_size = record.max_message_size;
      intent.bucket_divisor = record.bucket_divisor;
      break;
    }
    case JournalOp::kQosRelease:
      intents_.erase({record.context, record.world_rank});
      break;
    case JournalOp::kCrash:
    case JournalOp::kRestart:
      break;
  }
}

void StateJournal::recordQosPut(std::int32_t context, int world_rank,
                                std::uint32_t qos_class,
                                double bandwidth_kbps,
                                std::size_t max_message_size,
                                double bucket_divisor) {
  JournalRecord record;
  record.op = JournalOp::kQosPut;
  record.context = context;
  record.world_rank = world_rank;
  record.qos_class = qos_class;
  record.bandwidth_kbps = bandwidth_kbps;
  record.max_message_size = max_message_size;
  record.bucket_divisor = bucket_divisor;
  append(std::move(record));
}

void StateJournal::recordQosRelease(std::int32_t context, int world_rank) {
  JournalRecord record;
  record.op = JournalOp::kQosRelease;
  record.context = context;
  record.world_rank = world_rank;
  append(std::move(record));
}

void StateJournal::recordCrash(const std::string& detail) {
  JournalRecord record;
  record.op = JournalOp::kCrash;
  record.detail = detail;
  append(std::move(record));
}

void StateJournal::recordRestart(const std::string& detail) {
  JournalRecord record;
  record.op = JournalOp::kRestart;
  record.detail = detail;
  append(std::move(record));
}

void StateJournal::forceRetire(std::uint64_t reservation_id,
                               const std::string& reason) {
  if (!isLive(reservation_id)) return;
  JournalRecord record;
  record.op = JournalOp::kFailed;
  record.reservation_id = reservation_id;
  record.resource = live_.at(reservation_id).resource;
  record.amount = live_.at(reservation_id).amount;
  record.slot = live_.at(reservation_id).slot;
  record.detail = reason;
  append(std::move(record));
}

std::vector<StateJournal::LiveReservation> StateJournal::liveReservations()
    const {
  std::vector<LiveReservation> out;
  out.reserve(live_.size());
  for (const auto& [id, live] : live_) out.push_back(live);
  return out;  // std::map iteration: already sorted by id
}

std::vector<StateJournal::LiveIntent> StateJournal::liveIntents() const {
  std::vector<LiveIntent> out;
  out.reserve(intents_.size());
  for (const auto& [key, intent] : intents_) out.push_back(intent);
  return out;  // sorted by (context, world_rank)
}

}  // namespace mgq::resil
