// Anti-entropy reconciliation between the journal (what the control plane
// believes) and the managers (what is actually enforced).
//
// After a crash-restart — or opportunistically at any time — the
// Reconciler sweeps for the two divergence shapes a dead controller
// leaves behind:
//   * zombie enforcement: a manager still enforces a reservation the
//     journal considers terminal (repair: Gara::fail tears it down);
//   * unclaimed state: the journal says a reservation is live but the
//     restarted Gara has no record of it (repair: fail-and-refresh, so
//     the agent's re-issued intents re-reserve cleanly, or adopt the
//     surviving handle as-is);
//   * orphaned slots: slot-table claims owned by no journal-live
//     reservation (repair: remove the claim).
// Every repair increments an obs counter and records a trace event.
#pragma once

#include <cstdint>

#include "gara/gara.hpp"
#include "resil/journal.hpp"
#include "resil/lease.hpp"

namespace mgq::obs {
class MetricsRegistry;
class TraceBuffer;
}  // namespace mgq::obs

namespace mgq::resil {

class Reconciler {
 public:
  /// What to do with journal-live reservations the restarted Gara no
  /// longer claims.
  enum class UnclaimedPolicy {
    /// Fail them (freeing slots and enforcement) and let the re-issued
    /// QoS intents reserve afresh — the default restart path.
    kFailAndRefresh,
    /// Re-adopt the surviving handles in place (no re-reservation).
    kAdopt,
  };

  /// `leases` may be null; lease-held handles are the registry of
  /// reservation objects that survived a Gara crash.
  Reconciler(gara::Gara& gara, StateJournal& journal, LeaseManager* leases)
      : gara_(gara), journal_(journal), leases_(leases) {}
  Reconciler(const Reconciler&) = delete;
  Reconciler& operator=(const Reconciler&) = delete;

  void attachObservability(obs::MetricsRegistry* metrics,
                           obs::TraceBuffer* trace);

  struct Report {
    int zombies_failed = 0;      // enforced but journal-terminal
    int unclaimed_failed = 0;    // journal-live, unclaimed, failed fresh
    int unclaimed_adopted = 0;   // journal-live, unclaimed, re-adopted
    int orphan_slots_removed = 0;
    int unrepairable = 0;        // divergence with no surviving handle
    int total() const {
      return zombies_failed + unclaimed_failed + unclaimed_adopted +
             orphan_slots_removed;
    }
  };

  Report reconcile(UnclaimedPolicy policy);

 private:
  void count(const char* counter, int n = 1);
  void trace(const char* event, std::uint64_t id, double value,
             const std::string& detail);

  gara::Gara& gara_;
  StateJournal& journal_;
  LeaseManager* leases_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceBuffer* trace_ = nullptr;
};

}  // namespace mgq::resil
