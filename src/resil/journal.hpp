// Deterministic in-memory state journal for crash-restart reconciliation.
//
// The journal is the control plane's durable record: an append-only list
// of reservation lifecycle operations and QoS intents. A simulated crash
// drops the agent's and GARA's in-memory state but never the journal (in
// a real deployment this is the write-ahead log on stable storage);
// restart replays the journal to learn which reservations and intents
// were live, then the anti-entropy Reconciler repairs any divergence
// between that record and what the managers still enforce.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "gara/gara.hpp"
#include "sim/simulator.hpp"

namespace mgq::resil {

enum class JournalOp {
  // Reservation lifecycle (mirrors Gara's lifecycle listener ops).
  kAdmitted,
  kActivated,
  kModified,
  kAdopted,
  kExpired,
  kCancelled,
  kFailed,
  // QoS intents (what the application asked the agent for).
  kQosPut,
  kQosRelease,
  // Control-plane epochs.
  kCrash,
  kRestart,
};

const char* journalOpName(JournalOp op);

struct JournalRecord {
  JournalOp op;
  double t_seconds = 0.0;
  // Reservation ops.
  std::uint64_t reservation_id = 0;
  std::string resource;
  double amount = 0.0;
  gara::SlotId slot = 0;
  std::string detail;
  // QoS intent ops (kQosPut / kQosRelease).
  std::int32_t context = 0;
  int world_rank = -1;
  std::uint32_t qos_class = 0;
  double bandwidth_kbps = 0.0;
  std::size_t max_message_size = 0;
  double bucket_divisor = 0.0;
};

class StateJournal {
 public:
  explicit StateJournal(sim::Simulator& sim) : sim_(sim) {}
  StateJournal(const StateJournal&) = delete;
  StateJournal& operator=(const StateJournal&) = delete;

  /// Subscribes to `gara`'s lifecycle events; every admitted / activated /
  /// modified / adopted / terminal op is appended and the live index kept
  /// in sync. Attach before any reservations are made.
  void attach(gara::Gara& gara);

  // --- QoS intent records (written by the QosAgent) -----------------------
  void recordQosPut(std::int32_t context, int world_rank,
                    std::uint32_t qos_class, double bandwidth_kbps,
                    std::size_t max_message_size, double bucket_divisor);
  void recordQosRelease(std::int32_t context, int world_rank);

  // --- control-plane epoch markers ---------------------------------------
  void recordCrash(const std::string& detail);
  void recordRestart(const std::string& detail);

  /// Marks a journal-live reservation failed without a Gara handle — the
  /// Reconciler's last resort when no surviving handle can retire it.
  void forceRetire(std::uint64_t reservation_id, const std::string& reason);

  // --- replay queries ------------------------------------------------------
  bool isLive(std::uint64_t reservation_id) const {
    return live_.count(reservation_id) != 0;
  }

  /// What the journal believes each live reservation holds.
  struct LiveReservation {
    std::uint64_t id = 0;
    std::string resource;
    double amount = 0.0;
    gara::SlotId slot = 0;
  };
  /// Sorted by reservation id.
  std::vector<LiveReservation> liveReservations() const;

  /// Last-wins QoS intent per (context, world_rank) with no later release.
  struct LiveIntent {
    std::int32_t context = 0;
    int world_rank = -1;
    std::uint32_t qos_class = 0;
    double bandwidth_kbps = 0.0;
    std::size_t max_message_size = 0;
    double bucket_divisor = 0.0;
  };
  /// Sorted by (context, world_rank).
  std::vector<LiveIntent> liveIntents() const;

  /// Highest reservation id ever journaled — restart resumes allocation
  /// above it so replayed history never collides with new admissions.
  std::uint64_t maxReservationId() const { return max_id_; }

  const std::vector<JournalRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  std::size_t liveCount() const { return live_.size(); }

 private:
  void append(JournalRecord record);
  void applyReservationOp(const JournalRecord& record);

  sim::Simulator& sim_;
  std::vector<JournalRecord> records_;
  std::map<std::uint64_t, LiveReservation> live_;
  std::map<std::pair<std::int32_t, int>, LiveIntent> intents_;
  std::uint64_t max_id_ = 0;
};

}  // namespace mgq::resil
