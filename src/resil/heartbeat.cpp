#include "resil/heartbeat.hpp"

#include <algorithm>
#include <sstream>

#include "gara/gara.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mgq::resil {

namespace {
// phi = -log10(exp(-t/mean)) = t / (mean * ln 10).
constexpr double kLog10E = 0.4342944819032518;
}  // namespace

HeartbeatMonitor::HeartbeatMonitor(sim::Simulator& sim)
    : HeartbeatMonitor(sim, Config{}) {}

HeartbeatMonitor::HeartbeatMonitor(sim::Simulator& sim, Config config)
    : sim_(sim), config_(config) {
  if (config_.interval <= sim::Duration::zero()) {
    config_.interval = sim::Duration::millis(250);
  }
  if (config_.phi_threshold <= 0.0) config_.phi_threshold = 2.0;
  if (config_.window < 2) config_.window = 2;
}

void HeartbeatMonitor::attachObservability(obs::MetricsRegistry* metrics,
                                           obs::TraceBuffer* trace) {
  metrics_ = metrics;
  trace_ = trace;
}

void HeartbeatMonitor::count(const char* counter) {
  if (metrics_ != nullptr) metrics_->counter(counter).inc();
}

void HeartbeatMonitor::watch(const std::string& name, Probe probe,
                             DownHandler on_down) {
  auto& peer = peers_[name];
  peer.probe = std::move(probe);
  peer.on_down = std::move(on_down);
  peer.last_ok = sim_.now();
  sim_.schedule(config_.interval, [this, name] { tick(name); });
}

double HeartbeatMonitor::meanIntervalOf(const Peer& peer) const {
  if (peer.intervals.empty()) return config_.interval.toSeconds();
  double sum = 0.0;
  for (const auto s : peer.intervals) sum += s;
  return std::max(sum / static_cast<double>(peer.intervals.size()), 1e-9);
}

double HeartbeatMonitor::phiOf(const Peer& peer) const {
  const double elapsed = (sim_.now() - peer.last_ok).toSeconds();
  if (elapsed <= 0.0) return 0.0;
  return kLog10E * elapsed / meanIntervalOf(peer);
}

double HeartbeatMonitor::phi(const std::string& name) const {
  const auto it = peers_.find(name);
  return it == peers_.end() ? 0.0 : phiOf(it->second);
}

bool HeartbeatMonitor::suspected(const std::string& name) const {
  const auto it = peers_.find(name);
  return it != peers_.end() && it->second.down_reported;
}

void HeartbeatMonitor::tick(const std::string& name) {
  const auto it = peers_.find(name);
  if (it == peers_.end()) return;
  auto& peer = it->second;

  if (!suspended_) {
    if (peer.probe && peer.probe()) {
      // Cap the recorded inter-arrival so one long outage does not
      // inflate the learned mean (and deafen the detector) afterwards.
      const double gap =
          std::min((sim_.now() - peer.last_ok).toSeconds(),
                   3.0 * config_.interval.toSeconds());
      peer.intervals.push_back(std::max(gap, 1e-9));
      while (peer.intervals.size() > config_.window) {
        peer.intervals.pop_front();
      }
      peer.last_ok = sim_.now();
      if (peer.down_reported) {
        peer.down_reported = false;
        count("resil.heartbeat.recovered");
        if (trace_ != nullptr) {
          trace_->record("resil", "manager_up", 0, 0.0, name);
        }
      }
    }
    const double phi = phiOf(peer);
    if (metrics_ != nullptr) {
      metrics_->gauge("resil.heartbeat.phi." + name).set(phi);
    }
    if (!peer.down_reported && phi > config_.phi_threshold) {
      peer.down_reported = true;
      count("resil.heartbeat.manager_down");
      if (trace_ != nullptr) {
        trace_->record("resil", "manager_down", 0, phi, name);
      }
      if (peer.on_down) peer.on_down(name, phi);
    }
  }
  sim_.schedule(config_.interval, [this, name] { tick(name); });
}

void HeartbeatMonitor::suspend() { suspended_ = true; }

void HeartbeatMonitor::resume() {
  suspended_ = false;
  for (auto& [name, peer] : peers_) {
    peer.last_ok = sim_.now();  // downtime was ours, not the peer's
  }
}

void attachManagerHeartbeats(HeartbeatMonitor& monitor, gara::Gara& gara) {
  for (const auto& name : gara.resourceNames()) {
    auto* manager = gara.findManager(name);
    if (manager == nullptr) continue;
    monitor.watch(
        name, [manager] { return manager->reachable(); },
        [&gara, manager](const std::string& which, double phi) {
          // Fail the suspected manager's live reservations so the agent's
          // RecoveryPolicy reacts now, not on the next request.
          std::ostringstream reason;
          reason << "manager '" << which << "' suspected down (phi="
                 << phi << ")";
          for (const auto& handle : gara.liveHandles()) {
            if (&handle->manager() == manager) {
              gara.fail(handle, reason.str());
            }
          }
        });
  }
}

}  // namespace mgq::resil
