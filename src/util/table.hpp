// ASCII table / CSV emission used by the per-figure benchmark binaries to
// print the same rows and series the paper reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mgq::util {

/// Collects rows of string cells and renders either an aligned ASCII table
/// (for human reading) or CSV (for plotting). Column count is fixed by the
/// header; short rows are padded with empty cells.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 1);

  void renderAscii(std::ostream& os) const;
  void renderCsv(std::ostream& os) const;

  std::size_t rowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mgq::util
