#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mgq::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;
std::function<void(LogLevel, const std::string&)> g_sink;  // guarded by mutex

void defaultSink(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", logLevelName(level), message.c_str());
}

}  // namespace

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

void setLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void setLogSink(std::function<void(LogLevel, const std::string&)> sink) {
  std::lock_guard lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void logMessage(LogLevel level, const std::string& message) {
  if (level < logLevel()) return;
  std::lock_guard lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
  } else {
    defaultSink(level, message);
  }
}

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace mgq::util
