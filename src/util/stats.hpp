// Summary statistics helpers used by the benchmark harness and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mgq::util {

/// Online accumulator for count/mean/min/max/variance (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the p-th percentile (0..100) by linear interpolation between
/// closest ranks. An empty input yields NaN — a missing series must not
/// masquerade as "zero latency" in exported results.
double percentile(std::span<const double> values, double p);

/// Weighted percentile (0..100) by cumulative weight, nearest-rank: the
/// smallest value whose cumulative weight reaches p% of the total. Used
/// for time-weighted occupancy histograms, where each sample's weight is
/// the duration it was observed for. Empty input, mismatched spans, or a
/// non-positive total weight yield NaN.
double weightedPercentile(std::span<const double> values,
                          std::span<const double> weights, double p);

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> values);

/// Coefficient of variation (stddev/mean); NaN for an empty span, 0 when
/// the (nonempty) input's mean is 0.
double coefficientOfVariation(std::span<const double> values);

/// Simple fixed-width moving average; the first (window-1) outputs average
/// over the prefix seen so far. Returns a series the same length as input.
std::vector<double> movingAverage(std::span<const double> values,
                                  std::size_t window);

}  // namespace mgq::util
