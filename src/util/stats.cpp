#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mgq::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double weightedPercentile(std::span<const double> values,
                          std::span<const double> weights, double p) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  if (values.empty() || values.size() != weights.size()) return nan;
  std::vector<std::size_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return nan;
  const double target = std::clamp(p, 0.0, 100.0) / 100.0 * total;
  double cum = 0.0;
  for (std::size_t i : order) {
    cum += weights[i];
    if (cum >= target) return values[i];
  }
  return values[order.back()];
}

double mean(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double coefficientOfVariation(std::span<const double> values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  RunningStats s;
  for (double v : values) s.add(v);
  if (s.mean() == 0.0) return 0.0;
  return s.stddev() / s.mean();
}

std::vector<double> movingAverage(std::span<const double> values,
                                  std::size_t window) {
  std::vector<double> out;
  out.reserve(values.size());
  if (window == 0) window = 1;
  double acc = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    acc += values[i];
    if (i >= window) acc -= values[i - window];
    const std::size_t n = std::min(i + 1, window);
    out.push_back(acc / static_cast<double>(n));
  }
  return out;
}

}  // namespace mgq::util
