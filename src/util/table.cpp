#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mgq::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::renderAscii(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto renderLine = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << cells[c];
    }
    os << '\n';
  };
  renderLine(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) renderLine(row);
}

void Table::renderCsv(std::ostream& os) const {
  auto renderLine = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  renderLine(header_);
  for (const auto& row : rows_) renderLine(row);
}

}  // namespace mgq::util
