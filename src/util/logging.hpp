// Lightweight leveled logging for the MPICH-GQ reproduction.
//
// The logger is intentionally minimal: a global level, a printf-free
// stream-style macro, and an optional sink override so tests can capture
// output. Simulation code logs with the *simulated* time injected by the
// caller where relevant; the logger itself never touches the wall clock.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace mgq::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the current global log level (default: kWarn, so library users
/// see problems but benchmarks stay quiet).
LogLevel logLevel();

/// Sets the global log level.
void setLogLevel(LogLevel level);

/// Replaces the log sink. The default sink writes to stderr. Passing an
/// empty function restores the default.
void setLogSink(std::function<void(LogLevel, const std::string&)> sink);

/// Emits one log record through the active sink if `level` is enabled.
void logMessage(LogLevel level, const std::string& message);

/// Human-readable name for a level ("TRACE".."ERROR").
const char* logLevelName(LogLevel level);

}  // namespace mgq::util

// Stream-style logging macro: MGQ_LOG(kInfo) << "x=" << x;
// The stream expression is only evaluated when the level is enabled.
#define MGQ_LOG(level_suffix)                                               \
  for (bool mgq_log_once =                                                  \
           ::mgq::util::logLevel() <= ::mgq::util::LogLevel::level_suffix; \
       mgq_log_once; mgq_log_once = false)                                  \
  ::mgq::util::LogRecord(::mgq::util::LogLevel::level_suffix).stream()

namespace mgq::util {

/// RAII helper backing MGQ_LOG: collects the streamed text and forwards it
/// to the sink on destruction.
class LogRecord {
 public:
  explicit LogRecord(LogLevel level) : level_(level) {}
  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;
  ~LogRecord() { logMessage(level_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace mgq::util
