// ChaosPlanGenerator: derives a randomized fault schedule (a ChaosPlan)
// from a small distribution spec (ChaosProfile) and a seed.
//
// Episode starts are drawn with exponential inter-arrival gaps (Poisson
// processes, one per category), durations are exponential, and paired
// events (down/up, loss_start/loss_stop) never overlap within a category
// — the next episode is drawn from the previous restore time. Everything
// is clamped to the horizon so a plan always leaves its targets restored
// by (or at) the end of the run.
//
// Determinism: each category draws from its own splitmix-derived Rng, so
// the same (profile, seed, scenario, horizon) always yields the same plan
// and tuning one category's rate does not reshuffle the others.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/plan.hpp"

namespace mgq::chaos {

/// Distribution spec for one chaos category mix. Rates are episodes per
/// 100 simulated seconds (0 disables a category).
struct ChaosProfile {
  double link_flaps_per_100s = 4.0;
  double loss_episodes_per_100s = 4.0;
  double manager_outages_per_100s = 3.0;
  double cpu_hog_bursts_per_100s = 2.0;
  double reservation_cancels_per_100s = 2.0;
  double reservation_modifies_per_100s = 2.0;
  /// Control-plane chaos (zero by default so existing plans stay
  /// byte-identical): QoS-agent crash/restart episodes and lease-renewal
  /// outages ("renewal storms" — the holder is alive but cannot renew,
  /// so leases hard-expire). Only meaningful against specs that wired the
  /// resilience stack; the targets warn-and-skip otherwise.
  double agent_crashes_per_100s = 0.0;
  double renewal_storms_per_100s = 0.0;
  /// Adversarial data-plane chaos (zero by default, same byte-identical
  /// guarantee): corruption / duplication / reorder episodes on the
  /// premium edge's egress wire, and directional partition episodes that
  /// blackhole it until healed.
  double corruption_episodes_per_100s = 0.0;
  double duplicate_episodes_per_100s = 0.0;
  double reorder_episodes_per_100s = 0.0;
  double partition_episodes_per_100s = 0.0;

  // Mean episode durations (seconds, exponential).
  double mean_flap_seconds = 0.4;
  double mean_loss_seconds = 1.5;
  double mean_outage_seconds = 0.8;
  double mean_hog_seconds = 2.0;
  double mean_crash_downtime_seconds = 1.0;
  double mean_storm_seconds = 2.0;
  double mean_corruption_seconds = 1.5;
  double mean_duplicate_seconds = 1.5;
  double mean_reorder_seconds = 1.5;
  double mean_partition_seconds = 0.6;

  /// Drop probability of a loss episode: uniform in [loss_min, loss_max].
  double loss_min = 0.05;
  double loss_max = 0.5;
  /// Modify storms scale the victim reservation's amount by a uniform
  /// factor in [modify_min, modify_max].
  double modify_min = 0.5;
  double modify_max = 2.0;
  /// Per-packet probabilities of a corruption / duplication / reorder
  /// episode: uniform in [lo, hi] per episode.
  double corrupt_min = 0.005;
  double corrupt_max = 0.05;
  double duplicate_min = 0.01;
  double duplicate_max = 0.1;
  double reorder_min = 0.01;
  double reorder_max = 0.1;

  /// No events before this time — lets connections and inline
  /// reservations establish first.
  double warmup_seconds = 0.5;

  // Fault-target vocabulary (must match registerChaosTargets).
  std::string link_target = "premium-edge-link";
  std::string loss_target = "premium-edge-loss";
  std::vector<std::string> manager_targets = {"net-forward-manager",
                                              "net-reverse-manager"};
  std::string hog_target = "sender-cpu-hog";
  std::string churn_target = "reservation-churn";
  std::string agent_target = "qos-agent";
  std::string renewal_target = "lease-renewals";
  std::string corruption_target = "premium-edge-corrupt";
  std::string duplicate_target = "premium-edge-dup";
  std::string reorder_target = "premium-edge-reorder";
  std::string partition_target = "premium-edge-partition";
};

class ChaosPlanGenerator {
 public:
  explicit ChaosPlanGenerator(ChaosProfile profile)
      : profile_(std::move(profile)) {}

  /// Generates the plan for one (scenario, seed, horizon) triple. Events
  /// come back sorted by time; ties keep a fixed category order.
  ChaosPlan generate(const std::string& scenario, std::uint64_t seed,
                     double horizon_seconds) const;

  const ChaosProfile& profile() const { return profile_; }

 private:
  ChaosProfile profile_;
};

}  // namespace mgq::chaos
