#include "chaos/invariants.hpp"

#include <cstdio>

#include "apps/garnet_rig.hpp"
#include "gara/gara.hpp"
#include "gq/qos_agent.hpp"
#include "net/buffer.hpp"
#include "net/token_bucket.hpp"
#include "obs/trace.hpp"
#include "scenario/builder.hpp"
#include "tcp/tcp_socket.hpp"

namespace mgq::chaos {
namespace {

std::string formatTraceEvent(const obs::TraceEvent& e) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "t=%.6f %s.%s id=%llu v=%g", e.t_seconds,
                e.category.c_str(), e.event.c_str(),
                static_cast<unsigned long long>(e.id), e.value);
  std::string line = buf;
  if (!e.detail.empty()) line += " " + e.detail;
  return line;
}

}  // namespace

InvariantMonitor::InvariantMonitor(sim::Simulator& sim,
                                   double cadence_seconds,
                                   std::size_t max_violations)
    : sim_(sim),
      cadence_(sim::Duration::seconds(cadence_seconds)),
      max_violations_(max_violations),
      last_seen_(sim.now()) {}

void InvariantMonitor::addCheck(std::string name,
                                std::function<std::string()> check) {
  checks_.push_back({std::move(name), std::move(check)});
}

void InvariantMonitor::attachTrace(const obs::TraceBuffer* trace,
                                   std::size_t tail_events) {
  trace_ = trace;
  tail_events_ = tail_events;
}

void InvariantMonitor::arm() {
  if (armed_) return;
  armed_ = true;
  sim_.schedule(cadence_, [this] { tick(); });
}

void InvariantMonitor::tick() {
  sweep();
  sim_.schedule(cadence_, [this] { tick(); });
}

void InvariantMonitor::sweep() {
  const auto now = sim_.now();
  if (now < last_seen_) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "clock moved backwards: %.9f -> %.9f",
                  last_seen_.toSeconds(), now.toSeconds());
    report("monotone-time", buf);
  }
  last_seen_ = now;
  for (const auto& check : checks_) {
    const std::string error = check.fn();
    if (!error.empty()) report(check.name, error);
  }
}

void InvariantMonitor::report(const std::string& name,
                              const std::string& message) {
  if (violations_.size() >= max_violations_) return;
  InvariantViolation v;
  v.t_seconds = sim_.now().toSeconds();
  v.name = name;
  v.message = message;
  if (trace_ != nullptr) {
    const auto& events = trace_->events();
    const std::size_t n = events.size();
    const std::size_t from = n > tail_events_ ? n - tail_events_ : 0;
    for (std::size_t i = from; i < n; ++i) {
      v.trace_tail.push_back(formatTraceEvent(events[i]));
    }
  }
  violations_.push_back(std::move(v));
}

void attachStandardInvariants(InvariantMonitor& monitor,
                              scenario::BuiltScenario& built) {
  auto& rig = built.rig;
  auto* gara = &rig.gara;
  auto* sim = &rig.sim;

  // Slot-table bandwidth conservation: total admitted never exceeds a
  // manager's capacity at any instant. Resolved through Gara each sweep so
  // a swapped-in fault proxy is the table being checked.
  monitor.addCheck("slot-conservation", [gara, sim]() -> std::string {
    for (const auto& name : gara->resourceNames()) {
      const auto* manager = gara->findManager(name);
      if (manager == nullptr) continue;
      const double used = manager->slots().usedAt(sim->now());
      const double capacity = manager->slots().capacity();
      if (used > capacity * (1.0 + 1e-9) + 1e-6) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s: admitted %.0f exceeds capacity %.0f", name.c_str(),
                      used, capacity);
        return buf;
      }
    }
    return {};
  });

  // Token-bucket fill level stays within [-depth, depth] (forceConsume
  // debt is clamped at -depth; refill clamps at +depth).
  monitor.addCheck("bucket-level", [gara]() -> std::string {
    for (const auto& handle : gara->liveHandles()) {
      if (handle->bucket == nullptr) continue;
      const double level = handle->bucket->peekTokens();
      const double depth =
          static_cast<double>(handle->bucket->depthBytes());
      if (level < -depth - 1e-6 || level > depth + 1e-6) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "reservation %llu: bucket level %.1f outside "
                      "[-%.0f, %.0f]",
                      static_cast<unsigned long long>(handle->id()), level,
                      depth, depth);
        return buf;
      }
    }
    return {};
  });

  // No reservation stuck outside its lifecycle: kPending past its start
  // time or kActive past its end, beyond a grace that absorbs
  // same-timestamp activation/expiry races.
  monitor.addCheck("reservation-liveness", [gara, sim]() -> std::string {
    const auto grace = sim::Duration::millis(100);
    const auto now = sim->now();
    for (const auto& handle : gara->liveHandles()) {
      const auto& r = handle->request();
      char buf[160];
      if (handle->state() == gara::ReservationState::kPending &&
          now > r.start + grace) {
        std::snprintf(buf, sizeof(buf),
                      "reservation %llu still pending %.3fs past its start",
                      static_cast<unsigned long long>(handle->id()),
                      (now - r.start).toSeconds());
        return buf;
      }
      const bool bounded = r.duration < sim::Duration::infinite();
      if (handle->state() == gara::ReservationState::kActive && bounded &&
          now > r.start + r.duration + grace) {
        std::snprintf(buf, sizeof(buf),
                      "reservation %llu still active %.3fs past its end",
                      static_cast<unsigned long long>(handle->id()),
                      (now - r.start - r.duration).toSeconds());
        return buf;
      }
    }
    return {};
  });

  // Core bottleneck class queues: byte accounting consistent and within
  // capacity.
  monitor.addCheck("queue-consistency", [&rig]() -> std::string {
    auto* bottleneck = rig.garnet.coreBottleneckInterface();
    if (bottleneck == nullptr) return {};
    for (const auto dscp :
         {net::Dscp::kExpedited, net::Dscp::kLowLatency,
          net::Dscp::kBestEffort}) {
      const std::string error =
          bottleneck->qdisc().classQueue(dscp).invariantError();
      if (!error.empty()) {
        return std::string("core bottleneck ") + net::dscpName(dscp) + ": " +
               error;
      }
    }
    return {};
  });

  // --- adversarial data-plane invariants (DESIGN.md §14) ----------------

  // Checksum accounting conservation: every receiver-side checksum drop
  // must be explained by a corruption emitted on the premium egress wire.
  // A duplicated corrupted segment arrives (and fails) twice while
  // counting one corruption, so the bound is corrupted + duplicated; with
  // zero corruptions emitted, zero drops are tolerated.
  monitor.addCheck("checksum-conservation", [&built, &rig]() -> std::string {
    if (built.receiver == nullptr) return {};
    const auto* egress = rig.garnet.ingressEdgeInterface()->peer();
    const auto& wire = egress->stats();
    const auto drops = built.receiver->stats().checksum_drops;
    const auto bound =
        wire.corrupted == 0 ? 0 : wire.corrupted + wire.duplicated;
    if (drops > bound) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "receiver counted %llu checksum drops but the wire "
                    "emitted only %llu corruptions (+%llu dups)",
                    static_cast<unsigned long long>(drops),
                    static_cast<unsigned long long>(wire.corrupted),
                    static_cast<unsigned long long>(wire.duplicated));
      return buf;
    }
    return {};
  });

  // No delivery of corrupted bytes: the offered-load server drains with
  // pattern verification, and a corrupted byte reaching the application
  // turns into a counted connection reset. Zero resets at every sweep
  // means the checksum wall held.
  monitor.addCheck("no-corrupted-delivery", [&built]() -> std::string {
    if (built.receiver == nullptr) return {};
    const auto resets = built.receiver->stats().resets;
    if (resets > 0 || built.receiver->resetDetected()) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "corrupted bytes reached the application: %llu "
                    "connection reset(s)",
                    static_cast<unsigned long long>(resets));
      return buf;
    }
    return {};
  });

  // Reorder-buffer bound: packets held back by the reorder hook are
  // bounded by what the link can serialize inside the hold window (the
  // injector's default 5 ms, floor 40-byte wire size), and the receiver's
  // reassembly buffer never parks more than one receive buffer of bytes.
  monitor.addCheck("reorder-buffer-bound", [&built, &rig]() -> std::string {
    const auto* egress = rig.garnet.ingressEdgeInterface()->peer();
    const auto held = egress->delayedInFlight();
    const auto held_bound = static_cast<std::size_t>(
        2.0 + egress->rateBps() * 0.005 / (8.0 * 40.0));
    char buf[160];
    if (held > held_bound) {
      std::snprintf(buf, sizeof(buf),
                    "%zu packets held for reorder exceeds the %zu the link "
                    "serializes in one hold window",
                    held, held_bound);
      return buf;
    }
    if (built.receiver != nullptr) {
      const auto ooo = built.receiver->outOfOrderBytes();
      const auto bound = built.receiver->config().recv_buffer_bytes;
      if (ooo > bound) {
        std::snprintf(buf, sizeof(buf),
                      "receiver parks %lld out-of-order bytes, above the "
                      "%lld-byte receive buffer",
                      static_cast<long long>(ooo),
                      static_cast<long long>(bound));
        return buf;
      }
    }
    return {};
  });

  // Pool-ceiling respected: with a live-bytes ceiling configured, the
  // shed-able producers must keep the pool from racing away. allocate()
  // stays ceiling-exempt for correctness paths (ring gathers, reassembly
  // views), so a bounded overshoot — socket buffers plus in-flight wire
  // bytes — is legal; 1 MiB of slack covers the premium flow's worst
  // case, while a leak (the real failure mode) still trips the check.
  monitor.addCheck("pool-ceiling-respected", []() -> std::string {
    const auto& pool = net::BufferPool::local();
    const auto ceiling = pool.liveBytesCeiling();
    if (ceiling <= 0) return {};
    const auto live = pool.stats().live_bytes;
    if (live > ceiling + (1 << 20)) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "pool holds %lld live bytes against a %lld-byte "
                    "ceiling (+1MiB slack)",
                    static_cast<long long>(live),
                    static_cast<long long>(ceiling));
      return buf;
    }
    return {};
  });

  // Control-plane resilience invariants, only when the spec wired the
  // stack.
  if (built.hasResilience()) {
    if (built.resil.leases != nullptr) {
      // Lease safety: no lease outlives deadline + grace — the guard
      // timer must have hard-expired it by then. 1 ms slack absorbs
      // same-timestamp guard/sweep ordering.
      auto* leases = built.resil.leases.get();
      monitor.addCheck("lease-safety", [leases, sim]() -> std::string {
        const auto now = sim->now();
        const auto limit = leases->config().grace + sim::Duration::millis(1);
        for (const auto& lease : leases->leases()) {
          if (now > lease.deadline + limit) {
            char buf[160];
            std::snprintf(
                buf, sizeof(buf),
                "reservation %llu: lease %.3fs past deadline+grace "
                "without hard expiry",
                static_cast<unsigned long long>(lease.handle->id()),
                (now - lease.deadline).toSeconds());
            return buf;
          }
        }
        return {};
      });
    }
    // No zombie enforcement: every id a manager is enforcing must be live
    // in the journal (journal-live ⊇ enforced). Terminal lifecycle ops
    // fire after enforcement release, and the journal survives crashes,
    // so this holds at every observable instant — including mid-crash.
    auto* journal = built.resil.journal.get();
    monitor.addCheck("no-zombie-enforcement", [gara, journal]() -> std::string {
      for (const auto& name : gara->resourceNames()) {
        const auto* manager = gara->findManager(name);
        if (manager == nullptr) continue;
        for (const auto id : manager->enforcedIds()) {
          if (!journal->isLive(id)) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "%s: enforcing reservation %llu the journal "
                          "says is retired",
                          name.c_str(),
                          static_cast<unsigned long long>(id));
            return buf;
          }
        }
      }
      return {};
    });
  }

  // Adaptive-controller invariants (DESIGN.md §15), only when a
  // QosController is armed on this run.
  if (built.adapt != nullptr && built.adapt->controller != nullptr) {
    auto* controller = built.adapt->controller.get();

    // No over-admission by the controller: per resource manager, the
    // controller-managed live reservations must sum within the manager's
    // slot-table capacity — the arbiter may only re-grant capacity that
    // admission control actually has. Stricter than slot-conservation:
    // it catches an arbiter that over-grants even if the slot table's
    // own accounting were broken in the same direction.
    monitor.addCheck("adapt-no-over-admission",
                     [controller]() -> std::string {
      std::vector<std::pair<const gara::ResourceManager*, double>> sums;
      for (const auto* path : controller->managedReservations()) {
        for (const auto& leg : path->handles) {
          if (leg == nullptr || gara::isTerminal(leg->state())) continue;
          const auto* manager = &leg->manager();
          bool found = false;
          for (auto& entry : sums) {
            if (entry.first == manager) {
              entry.second += leg->request().amount;
              found = true;
              break;
            }
          }
          if (!found) sums.emplace_back(manager, leg->request().amount);
        }
      }
      for (const auto& entry : sums) {
        const double capacity = entry.first->slots().capacity();
        if (entry.second > capacity * (1.0 + 1e-9) + 1e-6) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "controller-managed reservations total %.0f against "
                        "capacity %.0f",
                        entry.second, capacity);
          return buf;
        }
      }
      return {};
    });

    // Post-modify pacing consistency: after every resize the enforcing
    // edge leg's token bucket must have been re-derived for the current
    // amount (depth == depthForRate(amount, divisor), mirroring what the
    // manager computes on enforce) with its fill level inside ±depth.
    monitor.addCheck("adapt-bucket-consistent",
                     [controller]() -> std::string {
      for (const auto* path : controller->managedReservations()) {
        if (path->handles.empty()) continue;
        const auto& edge = path->handles.front();
        if (edge == nullptr || gara::isTerminal(edge->state())) continue;
        if (edge->bucket == nullptr) continue;
        const auto& req = edge->request();
        const auto want =
            net::TokenBucket::depthForRate(req.amount, req.bucket_divisor);
        const auto depth = edge->bucket->depthBytes();
        char buf[160];
        if (depth != want) {
          std::snprintf(buf, sizeof(buf),
                        "reservation %llu: bucket depth %lld but amount "
                        "%.0f wants %lld",
                        static_cast<unsigned long long>(edge->id()),
                        static_cast<long long>(depth), req.amount,
                        static_cast<long long>(want));
          return buf;
        }
        const double level = edge->bucket->peekTokens();
        const double bound = static_cast<double>(depth);
        if (level < -bound - 1e-6 || level > bound + 1e-6) {
          std::snprintf(buf, sizeof(buf),
                        "reservation %llu: post-modify bucket level %.1f "
                        "outside [-%.0f, %.0f]",
                        static_cast<unsigned long long>(edge->id()), level,
                        bound, bound);
          return buf;
        }
      }
      return {};
    });
  }

  // QoS request-state legality: event-driven — the agent fires the
  // observer synchronously on every edge, so an illegal transition is
  // caught the moment it happens, not at the next sweep.
  rig.agent.setStateObserver([&monitor](std::int32_t context,
                                        gq::QosRequestState from,
                                        gq::QosRequestState to) {
    if (gq::qosTransitionLegal(from, to)) return;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "comm %d: illegal edge %s -> %s",
                  context, gq::qosRequestStateName(from),
                  gq::qosRequestStateName(to));
    monitor.report("qos-transition", buf);
  });
}

}  // namespace mgq::chaos
