// Chaos fault-target wiring: binds the generator's target vocabulary to a
// live BuiltScenario.
//
//   premium-edge-link    down/up        LinkFault on the premium edge
//   premium-edge-loss    loss_start/stop seeded LossInjector on the
//                                       premium source's egress wire
//   net-forward-manager  down/up        FlakyResourceManager proxy swapped
//   net-reverse-manager                 in for the rig's network managers
//                                       (down = outage + revoke active)
//   sender-cpu-hog       down/up        CpuHog burst on the sending host
//   reservation-churn    down           cancel the lowest-id live
//                                       reservation
//                        loss_start(p)  modify it: amount ×= p
//   premium-edge-corrupt loss_start/stop seeded CorruptionInjector on the
//                                       premium source's egress wire
//   premium-edge-dup     loss_start/stop seeded DuplicateInjector, same wire
//   premium-edge-reorder loss_start/stop seeded ReorderInjector, same wire
//   premium-edge-partition down/up      directional PartitionFault black-
//                                       holing that egress until healed
//
// The churn target deliberately leaves `up`/`loss_stop` unset — plan
// entries that land on them become logged "(no-op)" lines and count in
// skipped_actions, which the chaos log footer surfaces.
#pragma once

#include <cstdint>
#include <memory>

#include "cpu/cpu_scheduler.hpp"
#include "gara/flaky_resource_manager.hpp"
#include "net/faults.hpp"
#include "sim/fault_injector.hpp"

namespace mgq::scenario {
struct BuiltScenario;
}

namespace mgq::chaos {

/// Owns the fault machinery registered on a built scenario; must outlive
/// the run (the injector's scheduled events reference it).
struct ChaosTargets {
  std::unique_ptr<net::LinkFault> edge_link;
  std::unique_ptr<net::LossInjector> edge_loss;
  std::unique_ptr<net::CorruptionInjector> edge_corrupt;
  std::unique_ptr<net::DuplicateInjector> edge_dup;
  std::unique_ptr<net::ReorderInjector> edge_reorder;
  std::unique_ptr<net::PartitionFault> edge_partition;
  /// Proxies registered with Gara *in place of* the rig's managers; tests
  /// reach their slot tables here (e.g. forceOverAdmissionForTest).
  std::unique_ptr<gara::FlakyResourceManager> net_forward;
  std::unique_ptr<gara::FlakyResourceManager> net_reverse;
  std::unique_ptr<cpu::CpuHog> hog;
};

/// Creates the machinery above and registers every chaos target with
/// `injector`. Call from RunHooks::on_built, before any simulated event
/// has run (the manager swap must precede the first reservation).
/// `loss_seed` seeds the LossInjector's own Rng; the adversarial
/// injectors derive independent splitmix streams from it, so enabling a
/// new category never perturbs the loss pattern of an existing seed. The
/// injectors' corruption/duplication/reorder/blackhole totals are also
/// registered as footer counters (omitted at zero).
ChaosTargets registerChaosTargets(scenario::BuiltScenario& built,
                                  sim::FaultInjector& injector,
                                  std::uint64_t loss_seed);

}  // namespace mgq::chaos
