#include "chaos/plan.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace mgq::chaos {

std::string serializeReplay(const ChaosPlan& plan) {
  std::string out = "mgq-chaos-replay v1\n";
  char line[256];
  out += "scenario " + plan.scenario + "\n";
  std::snprintf(line, sizeof(line), "seed %" PRIu64 "\n", plan.seed);
  out += line;
  std::snprintf(line, sizeof(line), "horizon_s %.17g\n",
                plan.horizon_seconds);
  out += line;
  std::snprintf(line, sizeof(line), "events %zu\n", plan.events.size());
  out += line;
  for (const auto& e : plan.events) {
    // %.17g round-trips any double exactly; targets never contain spaces.
    std::snprintf(line, sizeof(line), "%" PRId64 " %s %s %.17g\n",
                  e.at.ns(), e.target.c_str(), faultActionName(e.action),
                  e.param);
    out += line;
  }
  return out;
}

bool parseReplay(const std::string& text, ChaosPlan& out,
                 std::string& error) {
  std::istringstream in(text);
  std::string line;
  auto fail = [&error](const std::string& why) {
    error = "replay parse error: " + why;
    return false;
  };
  if (!std::getline(in, line) || line != "mgq-chaos-replay v1") {
    return fail("bad header");
  }
  out = ChaosPlan{};
  std::size_t expected = 0;
  {
    std::string key;
    if (!(in >> key) || key != "scenario" || !(in >> out.scenario)) {
      return fail("missing scenario");
    }
    if (!(in >> key) || key != "seed" || !(in >> out.seed)) {
      return fail("missing seed");
    }
    if (!(in >> key) || key != "horizon_s" || !(in >> out.horizon_seconds)) {
      return fail("missing horizon");
    }
    if (!(in >> key) || key != "events" || !(in >> expected)) {
      return fail("missing event count");
    }
  }
  for (std::size_t i = 0; i < expected; ++i) {
    std::int64_t at_ns = 0;
    std::string target, action;
    double param = 0.0;
    if (!(in >> at_ns >> target >> action >> param)) {
      return fail("truncated event list");
    }
    sim::FaultEvent event;
    event.at = sim::TimePoint::zero() + sim::Duration::nanos(at_ns);
    event.target = std::move(target);
    if (!sim::faultActionFromName(action, event.action)) {
      return fail("unknown action '" + action + "'");
    }
    event.param = param;
    out.events.push_back(std::move(event));
  }
  error.clear();
  return true;
}

}  // namespace mgq::chaos
