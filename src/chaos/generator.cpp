#include "chaos/generator.hpp"

#include <algorithm>

#include <functional>

#include "sim/random.hpp"

namespace mgq::chaos {
namespace {

using sim::FaultAction;
using sim::FaultEvent;
using sim::TimePoint;

FaultEvent makeEvent(double t_seconds, const std::string& target,
                     FaultAction action, double param = 0.0) {
  FaultEvent e;
  e.at = TimePoint::fromSeconds(t_seconds);
  e.target = target;
  e.action = action;
  e.param = param;
  return e;
}

/// Paired episodes (down at t, up at min(t + duration, horizon)), starts
/// Poisson with mean gap 100/rate, durations exponential. `param_fn` (may
/// be null) supplies the down-event parameter (loss probability).
void generateEpisodes(sim::Rng& rng, const std::string& target, double rate,
                      double mean_duration, double warmup, double horizon,
                      FaultAction down, FaultAction up,
                      const std::function<double(sim::Rng&)>& param_fn,
                      std::vector<FaultEvent>& out) {
  if (rate <= 0.0 || target.empty()) return;
  const double mean_gap = 100.0 / rate;
  double t = warmup + rng.exponential(mean_gap);
  while (t < horizon) {
    const double param = param_fn ? param_fn(rng) : 0.0;
    out.push_back(makeEvent(t, target, down, param));
    const double restore =
        std::min(t + rng.exponential(mean_duration), horizon);
    out.push_back(makeEvent(restore, target, up));
    t = restore + rng.exponential(mean_gap);
  }
}

/// Single (unpaired) events at Poisson times: reservation churn.
void generatePoints(sim::Rng& rng, const std::string& target, double rate,
                    double warmup, double horizon, FaultAction action,
                    double param_lo, double param_hi,
                    std::vector<FaultEvent>& out) {
  if (rate <= 0.0 || target.empty()) return;
  const double mean_gap = 100.0 / rate;
  double t = warmup + rng.exponential(mean_gap);
  while (t < horizon) {
    const double param =
        param_hi > param_lo ? rng.uniform(param_lo, param_hi) : param_lo;
    out.push_back(makeEvent(t, target, action, param));
    t += rng.exponential(mean_gap);
  }
}

}  // namespace

ChaosPlan ChaosPlanGenerator::generate(const std::string& scenario,
                                       std::uint64_t seed,
                                       double horizon_seconds) const {
  ChaosPlan plan;
  plan.scenario = scenario;
  plan.seed = seed;
  plan.horizon_seconds = horizon_seconds;

  const double warmup = profile_.warmup_seconds;
  const double horizon = horizon_seconds;
  std::uint64_t stream = 0;
  // Per-category Rng derived from the seed: category k draws from
  // seed ^ golden-ratio stream so categories are independent.
  auto categoryRng = [&](void) {
    return sim::Rng(seed + (++stream) * 0x9e3779b97f4a7c15ULL);
  };

  auto& events = plan.events;
  {
    auto rng = categoryRng();
    generateEpisodes(rng, profile_.link_target, profile_.link_flaps_per_100s,
                     profile_.mean_flap_seconds, warmup, horizon,
                     FaultAction::kDown, FaultAction::kUp,
                     nullptr, events);
  }
  {
    auto rng = categoryRng();
    const double lo = profile_.loss_min;
    const double hi = profile_.loss_max;
    auto draw = [lo, hi](sim::Rng& r) {
      return hi > lo ? r.uniform(lo, hi) : lo;
    };
    generateEpisodes(rng, profile_.loss_target,
                     profile_.loss_episodes_per_100s,
                     profile_.mean_loss_seconds, warmup, horizon,
                     FaultAction::kLossStart, FaultAction::kLossStop, draw,
                     events);
  }
  for (const auto& manager : profile_.manager_targets) {
    auto rng = categoryRng();
    generateEpisodes(rng, manager, profile_.manager_outages_per_100s,
                     profile_.mean_outage_seconds, warmup, horizon,
                     FaultAction::kDown, FaultAction::kUp,
                     nullptr, events);
  }
  {
    auto rng = categoryRng();
    generateEpisodes(rng, profile_.hog_target,
                     profile_.cpu_hog_bursts_per_100s,
                     profile_.mean_hog_seconds, warmup, horizon,
                     FaultAction::kDown, FaultAction::kUp,
                     nullptr, events);
  }
  {
    auto rng = categoryRng();
    generatePoints(rng, profile_.churn_target,
                   profile_.reservation_cancels_per_100s, warmup, horizon,
                   FaultAction::kDown, 0.0, 0.0, events);
  }
  {
    auto rng = categoryRng();
    generatePoints(rng, profile_.churn_target,
                   profile_.reservation_modifies_per_100s, warmup, horizon,
                   FaultAction::kLossStart, profile_.modify_min,
                   profile_.modify_max, events);
  }
  // Control-plane categories draw LAST so enabling them never reshuffles
  // the six original streams — existing soak plans stay byte-identical.
  {
    auto rng = categoryRng();
    generateEpisodes(rng, profile_.agent_target,
                     profile_.agent_crashes_per_100s,
                     profile_.mean_crash_downtime_seconds, warmup, horizon,
                     FaultAction::kDown, FaultAction::kUp, nullptr, events);
  }
  {
    auto rng = categoryRng();
    generateEpisodes(rng, profile_.renewal_target,
                     profile_.renewal_storms_per_100s,
                     profile_.mean_storm_seconds, warmup, horizon,
                     FaultAction::kDown, FaultAction::kUp, nullptr, events);
  }
  // Adversarial data-plane categories draw after the control-plane pair
  // for the same reason: appending streams never reshuffles earlier ones.
  {
    auto rng = categoryRng();
    const double lo = profile_.corrupt_min;
    const double hi = profile_.corrupt_max;
    auto draw = [lo, hi](sim::Rng& r) {
      return hi > lo ? r.uniform(lo, hi) : lo;
    };
    generateEpisodes(rng, profile_.corruption_target,
                     profile_.corruption_episodes_per_100s,
                     profile_.mean_corruption_seconds, warmup, horizon,
                     FaultAction::kLossStart, FaultAction::kLossStop, draw,
                     events);
  }
  {
    auto rng = categoryRng();
    const double lo = profile_.duplicate_min;
    const double hi = profile_.duplicate_max;
    auto draw = [lo, hi](sim::Rng& r) {
      return hi > lo ? r.uniform(lo, hi) : lo;
    };
    generateEpisodes(rng, profile_.duplicate_target,
                     profile_.duplicate_episodes_per_100s,
                     profile_.mean_duplicate_seconds, warmup, horizon,
                     FaultAction::kLossStart, FaultAction::kLossStop, draw,
                     events);
  }
  {
    auto rng = categoryRng();
    const double lo = profile_.reorder_min;
    const double hi = profile_.reorder_max;
    auto draw = [lo, hi](sim::Rng& r) {
      return hi > lo ? r.uniform(lo, hi) : lo;
    };
    generateEpisodes(rng, profile_.reorder_target,
                     profile_.reorder_episodes_per_100s,
                     profile_.mean_reorder_seconds, warmup, horizon,
                     FaultAction::kLossStart, FaultAction::kLossStop, draw,
                     events);
  }
  {
    auto rng = categoryRng();
    generateEpisodes(rng, profile_.partition_target,
                     profile_.partition_episodes_per_100s,
                     profile_.mean_partition_seconds, warmup, horizon,
                     FaultAction::kDown, FaultAction::kUp, nullptr, events);
  }

  // Stable: equal-timestamp events keep the fixed category order above,
  // so the plan (and hence the run) is byte-deterministic.
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace mgq::chaos
