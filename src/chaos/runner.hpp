// ChaosRunner: executes chaos plans against registry scenarios, sweeps
// seeds until an invariant breaks, and shrinks a failing plan to a
// minimal reproducer.
//
// A chaos run is a normal scenario run with three changes, applied
// through RunHooks without touching the scenario code: the spec's own
// scripted faults and shape checks are stripped (failure means invariant
// violations, nothing else), a fresh FaultInjector executes the plan over
// the chaos target vocabulary (chaos/targets.hpp), and an
// InvariantMonitor sweeps the standard invariants on a cadence plus once
// at teardown.
//
// Determinism: one Simulator per run, the plan fully determines the fault
// schedule, and the chaos log is assembled from fixed-format pieces —
// same plan ⇒ byte-identical log, which is what makes a shrunk replay
// file trustworthy.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/generator.hpp"
#include "chaos/invariants.hpp"
#include "chaos/plan.hpp"
#include "chaos/targets.hpp"
#include "scenario/registry.hpp"

namespace mgq::chaos {

struct ChaosOptions {
  ChaosProfile profile;
  /// Simulated horizon per run; <= 0 derives it from the scenario's own
  /// stop time (spec.run_until_seconds or the workload deadline).
  double horizon_seconds = 0.0;
  /// Invariant sweep cadence (simulated seconds).
  double cadence_seconds = 0.25;
  std::size_t max_violations = 16;
  std::size_t trace_tail = 8;
  /// Seed-sweep worker threads; <= 0 uses hardware concurrency. Each run
  /// owns its Simulator, so results are identical to serial execution.
  int threads = 0;
  /// When > 0, runPlan caps the run's thread-local BufferPool at this
  /// many live bytes for the duration of the run (restored afterwards),
  /// exercising the pool-pressure degradation paths and arming the
  /// pool-ceiling invariant. Safe under runSeeds' thread pool: each run
  /// executes wholly on one worker thread, so the ceiling it sets is the
  /// one its simulation sees.
  std::int64_t pool_ceiling_bytes = 0;
  /// Runs after the chaos machinery is wired, before the simulation
  /// starts — tests use it to plant bugs (e.g. the slot-table
  /// over-admission toggle on a fault proxy). Must be thread-safe across
  /// concurrent runs; it only receives per-run objects.
  std::function<void(scenario::BuiltScenario&, ChaosTargets&)> prepare;
};

/// One executed plan.
struct ChaosRunReport {
  ChaosPlan plan;
  std::vector<InvariantViolation> violations;
  /// Deterministic chaos log: plan header + injector log + footer +
  /// violation section. Same plan ⇒ byte-identical.
  std::string log;
  std::uint64_t injector_fired = 0;
  std::uint64_t injector_skipped = 0;
  bool ok() const { return violations.empty(); }
};

/// A seed sweep: reports in seed order up to (and including) the first
/// failing seed, at which point the sweep stops early.
struct ChaosOutcome {
  std::vector<ChaosRunReport> reports;
  /// Index into `reports` of the first failure; -1 when every seed held.
  int failing_index = -1;
  bool ok() const { return failing_index < 0; }
  const ChaosRunReport* failure() const {
    return failing_index < 0 ? nullptr : &reports[failing_index];
  }
};

class ChaosRunner {
 public:
  explicit ChaosRunner(
      const scenario::ScenarioRegistry& registry =
          scenario::ScenarioRegistry::paper())
      : registry_(&registry) {}

  /// Executes one plan exactly (the replay path). Throws
  /// std::invalid_argument for an unknown scenario name.
  ChaosRunReport runPlan(const ChaosPlan& plan,
                         const ChaosOptions& options = {}) const;

  /// Generates and runs plans for seeds [first_seed, first_seed + count),
  /// stopping at the first invariant violation.
  ChaosOutcome runSeeds(const std::string& scenario, std::uint64_t first_seed,
                        int count, const ChaosOptions& options = {}) const;

  /// Greedy delta-debugging: removes event chunks (halving down to single
  /// events) while the candidate still reproduces a violation of the same
  /// invariant as `failing`'s first violation. Returns the minimal plan;
  /// `steps`, when given, receives the number of candidate runs.
  ChaosPlan shrink(const ChaosPlan& failing, const ChaosOptions& options = {},
                   int* steps = nullptr) const;

  /// The horizon runSeeds will use for `scenario` under `options` —
  /// exposed so callers can generate matching plans themselves.
  double resolveHorizon(const std::string& scenario,
                        const ChaosOptions& options) const;

 private:
  const scenario::ScenarioRegistry* registry_;
};

}  // namespace mgq::chaos
