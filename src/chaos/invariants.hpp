// Runtime invariant monitoring for chaos runs.
//
// An InvariantMonitor holds named checks — read-only predicates over live
// simulation state — and sweeps them on a fixed simulated cadence plus
// once at teardown. Each failure becomes a structured InvariantViolation
// carrying the simulated time, the check name, a message, and the tail of
// the run's trace buffer (the last lifecycle events before things went
// wrong). Checks must not mutate state: the monitor observing a run must
// never change its byte-exact outcome.
//
// attachStandardInvariants() wires the paper-level invariants:
//   slot-conservation   per manager: usedAt(now) <= capacity
//   bucket-level        every live reservation's token bucket within
//                       [-depth, depth]
//   reservation-liveness nothing stuck kPending past its start (+grace),
//                       nothing kActive past its end (+grace)
//   qos-transition      every QosAgent request-state edge is legal per
//                       qosTransitionLegal() (observer-driven, not swept)
//   queue-consistency   core bottleneck class queues: byte counter ==
//                       sum of queued packets, within capacity
//   monotone-time       the simulated clock never goes backwards
// and, when the run armed an adaptive QosController (DESIGN.md §15):
//   adapt-no-over-admission  controller-managed reservations sum within
//                       each manager's slot-table capacity
//   adapt-bucket-consistent  the enforcing edge leg's bucket depth matches
//                       depthForRate(current amount) with its level in
//                       ±depth — every resize re-paced correctly
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace mgq::obs {
class TraceBuffer;
}
namespace mgq::scenario {
struct BuiltScenario;
}

namespace mgq::chaos {

struct InvariantViolation {
  double t_seconds = 0.0;
  std::string name;     // which invariant ("slot-conservation", ...)
  std::string message;  // what was observed
  /// Tail of the run's trace buffer at detection time (most recent last),
  /// one formatted line per event — the context a repro starts from.
  std::vector<std::string> trace_tail;
};

class InvariantMonitor {
 public:
  /// Sweeps every `cadence_seconds` of simulated time once armed;
  /// recording stops after `max_violations` (a broken invariant usually
  /// fails every subsequent sweep — the first reports are the signal).
  explicit InvariantMonitor(sim::Simulator& sim, double cadence_seconds = 0.25,
                            std::size_t max_violations = 16);
  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  /// Registers a named check returning an error message (empty = OK).
  /// Checks run in registration order and must be read-only.
  void addCheck(std::string name, std::function<std::string()> check);

  /// Attach the run's trace buffer so violations carry its tail.
  void attachTrace(const obs::TraceBuffer* trace, std::size_t tail_events = 8);

  /// Starts the cadence sweep (self-rescheduling simulator event).
  void arm();

  /// Runs every check now; used by arm()'s cadence event and once more at
  /// teardown (RunHooks::before_teardown).
  void sweep();

  /// Records a violation directly — for event-driven invariants (e.g. the
  /// QosAgent state observer) that detect illegality outside a sweep.
  void report(const std::string& name, const std::string& message);

  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  bool ok() const { return violations_.empty(); }

 private:
  struct Check {
    std::string name;
    std::function<std::string()> fn;
  };

  /// The self-rescheduling cadence event.
  void tick();

  sim::Simulator& sim_;
  sim::Duration cadence_;
  std::size_t max_violations_;
  std::vector<Check> checks_;
  std::vector<InvariantViolation> violations_;
  const obs::TraceBuffer* trace_ = nullptr;
  std::size_t tail_events_ = 8;
  sim::TimePoint last_seen_ = sim::TimePoint::zero();
  bool armed_ = false;
};

/// Registers the standard invariant set over a built scenario (see file
/// header) and installs the QosAgent state observer. The monitor must
/// outlive the run; the observer is detached when the rig dies with the
/// BuiltScenario (the agent lives inside it).
void attachStandardInvariants(InvariantMonitor& monitor,
                              scenario::BuiltScenario& built);

}  // namespace mgq::chaos
