#include "chaos/targets.hpp"

#include "apps/garnet_rig.hpp"
#include "gara/gara.hpp"
#include "scenario/builder.hpp"

namespace mgq::chaos {

ChaosTargets registerChaosTargets(scenario::BuiltScenario& built,
                                  sim::FaultInjector& injector,
                                  std::uint64_t loss_seed) {
  ChaosTargets t;
  auto& rig = built.rig;

  // Premium edge link, both directions — same attachment the scenario
  // builder uses for scripted FaultSpecs.
  t.edge_link =
      std::make_unique<net::LinkFault>(*rig.garnet.ingressEdgeInterface());
  injector.registerTarget("premium-edge-link",
                          net::linkFaultTarget(*t.edge_link));

  // Lossy-wire episodes on the premium source's egress (the forward data
  // path into the ingress edge).
  t.edge_loss = std::make_unique<net::LossInjector>(
      *rig.garnet.ingressEdgeInterface()->peer(), loss_seed);
  injector.registerTarget("premium-edge-loss",
                          net::lossFaultTarget(*t.edge_loss));

  // Manager outages: wrap the rig's network managers in failure proxies
  // and re-register them under the same resource names (replace
  // semantics), so every reservation from here on is admitted through the
  // proxy's slot table and can be revoked by an outage.
  t.net_forward =
      std::make_unique<gara::FlakyResourceManager>(rig.net_forward);
  t.net_reverse =
      std::make_unique<gara::FlakyResourceManager>(rig.net_reverse);
  rig.gara.registerManager("net-forward", *t.net_forward);
  rig.gara.registerManager("net-reverse", *t.net_reverse);
  injector.registerTarget("net-forward-manager", t.net_forward->faultTarget());
  injector.registerTarget("net-reverse-manager", t.net_reverse->faultTarget());

  // CPU contention bursts on the sending host.
  t.hog = std::make_unique<cpu::CpuHog>(rig.sender_cpu, "chaos-hog");
  {
    sim::FaultTarget target;
    auto* hog = t.hog.get();
    target.down = [hog] { hog->start(); };
    target.up = [hog] { hog->stop(); };
    injector.registerTarget("sender-cpu-hog", std::move(target));
  }

  // Reservation churn: cancel/modify storms against whatever is live at
  // firing time, lowest id first (liveHandles() is sorted) so the victim
  // choice is deterministic. `up`/`loss_stop` stay unset by design.
  {
    sim::FaultTarget target;
    auto* gara = &rig.gara;
    target.down = [gara] {
      const auto live = gara->liveHandles();
      if (!live.empty()) gara->cancel(live.front());
    };
    target.loss_start = [gara](double factor) {
      const auto live = gara->liveHandles();
      if (live.empty()) return;
      const auto& victim = live.front();
      gara->modify(victim, victim->request().amount * factor);
    };
    injector.registerTarget("reservation-churn", std::move(target));
  }

  // Control-plane chaos, only for specs that wired the resilience stack:
  // crash/restart the QoS agent + GARA through the builder's orchestration
  // (so chaos crashes and scripted AgentCrashSpecs are the same code
  // path), and pause lease renewals — a "renewal storm" where the holder
  // is alive but cannot renew, so leases hard-expire enforcement.
  if (built.hasResilience()) {
    {
      sim::FaultTarget target;
      auto* resil = &built.resil;
      target.down = [resil] {
        if (resil->crash) resil->crash();
      };
      target.up = [resil] {
        if (resil->restart) resil->restart();
      };
      injector.registerTarget("qos-agent", std::move(target));
    }
    if (built.resil.leases != nullptr) {
      sim::FaultTarget target;
      auto* leases = built.resil.leases.get();
      target.down = [leases] { leases->suspendRenewals(); };
      target.up = [leases] { leases->resumeRenewals(); };
      injector.registerTarget("lease-renewals", std::move(target));
    }
  }

  return t;
}

}  // namespace mgq::chaos
