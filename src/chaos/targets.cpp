#include "chaos/targets.hpp"

#include "apps/garnet_rig.hpp"
#include "gara/gara.hpp"
#include "scenario/builder.hpp"

namespace mgq::chaos {

ChaosTargets registerChaosTargets(scenario::BuiltScenario& built,
                                  sim::FaultInjector& injector,
                                  std::uint64_t loss_seed) {
  ChaosTargets t;
  auto& rig = built.rig;

  // Premium edge link, both directions — same attachment the scenario
  // builder uses for scripted FaultSpecs.
  t.edge_link =
      std::make_unique<net::LinkFault>(*rig.garnet.ingressEdgeInterface());
  injector.registerTarget("premium-edge-link",
                          net::linkFaultTarget(*t.edge_link));

  // Lossy-wire episodes on the premium source's egress (the forward data
  // path into the ingress edge).
  auto& premium_egress = *rig.garnet.ingressEdgeInterface()->peer();
  t.edge_loss = std::make_unique<net::LossInjector>(premium_egress, loss_seed);
  injector.registerTarget("premium-edge-loss",
                          net::lossFaultTarget(*t.edge_loss));

  // Adversarial data-plane injectors on the same egress wire, each with
  // its own splitmix-derived seed stream: enabling one category never
  // perturbs another's draw sequence for the same plan seed.
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  t.edge_corrupt = std::make_unique<net::CorruptionInjector>(
      premium_egress, loss_seed + 1 * kGolden);
  injector.registerTarget("premium-edge-corrupt",
                          net::corruptionFaultTarget(*t.edge_corrupt));
  t.edge_dup = std::make_unique<net::DuplicateInjector>(
      premium_egress, loss_seed + 2 * kGolden);
  injector.registerTarget("premium-edge-dup",
                          net::duplicateFaultTarget(*t.edge_dup));
  t.edge_reorder = std::make_unique<net::ReorderInjector>(
      premium_egress, loss_seed + 3 * kGolden);
  injector.registerTarget("premium-edge-reorder",
                          net::reorderFaultTarget(*t.edge_reorder));
  t.edge_partition = std::make_unique<net::PartitionFault>(premium_egress);
  injector.registerTarget("premium-edge-partition",
                          net::partitionFaultTarget(*t.edge_partition));

  // Footer accounting for the adversarial categories: zero-valued
  // counters are omitted, so zero-rate plans keep byte-identical footers.
  {
    auto* corrupt = t.edge_corrupt.get();
    auto* dup = t.edge_dup.get();
    auto* reorder = t.edge_reorder.get();
    auto* partition = t.edge_partition.get();
    injector.registerFooterCounter(
        "corrupted", [corrupt] { return corrupt->corrupted(); });
    injector.registerFooterCounter(
        "corrupt_skipped", [corrupt] { return corrupt->skipped(); });
    injector.registerFooterCounter("duplicated",
                                   [dup] { return dup->duplicated(); });
    injector.registerFooterCounter(
        "reordered", [reorder] { return reorder->reordered(); });
    injector.registerFooterCounter(
        "blackholed", [partition] { return partition->blackholed(); });
  }

  // Manager outages: wrap the rig's network managers in failure proxies
  // and re-register them under the same resource names (replace
  // semantics), so every reservation from here on is admitted through the
  // proxy's slot table and can be revoked by an outage.
  t.net_forward =
      std::make_unique<gara::FlakyResourceManager>(rig.net_forward);
  t.net_reverse =
      std::make_unique<gara::FlakyResourceManager>(rig.net_reverse);
  rig.gara.registerManager("net-forward", *t.net_forward);
  rig.gara.registerManager("net-reverse", *t.net_reverse);
  injector.registerTarget("net-forward-manager", t.net_forward->faultTarget());
  injector.registerTarget("net-reverse-manager", t.net_reverse->faultTarget());

  // CPU contention bursts on the sending host.
  t.hog = std::make_unique<cpu::CpuHog>(rig.sender_cpu, "chaos-hog");
  {
    sim::FaultTarget target;
    auto* hog = t.hog.get();
    target.down = [hog] { hog->start(); };
    target.up = [hog] { hog->stop(); };
    injector.registerTarget("sender-cpu-hog", std::move(target));
  }

  // Reservation churn: cancel/modify storms against whatever is live at
  // firing time, lowest id first (liveHandles() is sorted) so the victim
  // choice is deterministic. `up`/`loss_stop` stay unset by design.
  {
    sim::FaultTarget target;
    auto* gara = &rig.gara;
    target.down = [gara] {
      const auto live = gara->liveHandles();
      if (!live.empty()) gara->cancel(live.front());
    };
    target.loss_start = [gara](double factor) {
      const auto live = gara->liveHandles();
      if (live.empty()) return;
      const auto& victim = live.front();
      gara->modify(victim, victim->request().amount * factor);
    };
    injector.registerTarget("reservation-churn", std::move(target));
  }

  // Control-plane chaos, only for specs that wired the resilience stack:
  // crash/restart the QoS agent + GARA through the builder's orchestration
  // (so chaos crashes and scripted AgentCrashSpecs are the same code
  // path), and pause lease renewals — a "renewal storm" where the holder
  // is alive but cannot renew, so leases hard-expire enforcement.
  if (built.hasResilience()) {
    {
      sim::FaultTarget target;
      auto* resil = &built.resil;
      target.down = [resil] {
        if (resil->crash) resil->crash();
      };
      target.up = [resil] {
        if (resil->restart) resil->restart();
      };
      injector.registerTarget("qos-agent", std::move(target));
    }
    if (built.resil.leases != nullptr) {
      sim::FaultTarget target;
      auto* leases = built.resil.leases.get();
      target.down = [leases] { leases->suspendRenewals(); };
      target.up = [leases] { leases->resumeRenewals(); };
      injector.registerTarget("lease-renewals", std::move(target));
    }
  }

  return t;
}

}  // namespace mgq::chaos
