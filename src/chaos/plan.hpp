// A chaos plan: one randomized fault schedule bound to a scenario, a seed
// and a horizon — the unit the generator emits, the runner executes, the
// shrinker minimizes, and the replay file serializes.
//
// Serialization contract: serializeReplay() is byte-deterministic (fixed
// field order, integer nanosecond timestamps, %.17g parameters so doubles
// round-trip exactly), and parseReplay(serializeReplay(p)) == p. A replay
// file re-run through ChaosRunner::runPlan therefore reproduces the
// original run byte-identically — the same contract the FaultInjector log
// keeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault_injector.hpp"

namespace mgq::chaos {

struct ChaosPlan {
  std::string scenario;  // registry name the plan was generated against
  std::uint64_t seed = 0;
  /// Simulated stop time the plan was generated for; overrides the spec's
  /// run_until when the plan is executed.
  double horizon_seconds = 0.0;
  std::vector<sim::FaultEvent> events;  // sorted by time
};

/// Fixed-format replay file:
///
///   mgq-chaos-replay v1
///   scenario <name>
///   seed <u64>
///   horizon_s <%.17g>
///   events <n>
///   <at_ns> <target> <action> <param %.17g>
///   ...
std::string serializeReplay(const ChaosPlan& plan);

/// Parses a replay file; returns false (with `error` set) on malformed
/// input. Round-trips serializeReplay() exactly.
bool parseReplay(const std::string& text, ChaosPlan& out, std::string& error);

}  // namespace mgq::chaos
