#include "chaos/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <thread>

#include "net/buffer.hpp"
#include "scenario/builder.hpp"
#include "scenario/runner.hpp"

namespace mgq::chaos {
namespace {

/// Applies ChaosOptions::pool_ceiling_bytes to this thread's payload pool
/// for one run and restores the previous ceiling on scope exit, so a
/// capped chaos run never leaks pressure into later runs on the same
/// worker thread.
class PoolCeilingGuard {
 public:
  explicit PoolCeilingGuard(std::int64_t ceiling_bytes)
      : previous_(net::BufferPool::local().liveBytesCeiling()),
        active_(ceiling_bytes > 0) {
    if (active_) net::BufferPool::local().setLiveBytesCeiling(ceiling_bytes);
  }
  ~PoolCeilingGuard() {
    if (active_) net::BufferPool::local().setLiveBytesCeiling(previous_);
  }
  PoolCeilingGuard(const PoolCeilingGuard&) = delete;
  PoolCeilingGuard& operator=(const PoolCeilingGuard&) = delete;

 private:
  std::int64_t previous_;
  bool active_;
};

std::string buildChaosLog(const ChaosPlan& plan,
                          const std::string& injector_log,
                          const std::string& injector_footer,
                          const std::vector<InvariantViolation>& violations) {
  std::string log = "mgq-chaos-run v1\n";
  char line[160];
  log += "scenario " + plan.scenario + "\n";
  std::snprintf(line, sizeof(line), "seed %llu\n",
                static_cast<unsigned long long>(plan.seed));
  log += line;
  std::snprintf(line, sizeof(line), "horizon_s %.17g\n",
                plan.horizon_seconds);
  log += line;
  std::snprintf(line, sizeof(line), "events %zu\n", plan.events.size());
  log += line;
  log += "--- injector ---\n";
  if (!injector_log.empty()) {
    log += injector_log;
    if (injector_log.back() != '\n') log += '\n';
  }
  log += injector_footer;  // "fired=N skipped_actions=N\n"
  log += "--- violations ---\n";
  for (const auto& v : violations) {
    std::snprintf(line, sizeof(line), "t=%.6f ", v.t_seconds);
    log += line;
    log += v.name + ": " + v.message + "\n";
    for (const auto& tail : v.trace_tail) {
      log += "  trace: " + tail + "\n";
    }
  }
  std::snprintf(line, sizeof(line), "violations=%zu\n", violations.size());
  log += line;
  return log;
}

}  // namespace

double ChaosRunner::resolveHorizon(const std::string& scenario,
                                   const ChaosOptions& options) const {
  if (options.horizon_seconds > 0) return options.horizon_seconds;
  const auto* info = registry_->find(scenario);
  if (info == nullptr) {
    throw std::invalid_argument("unknown scenario: " + scenario);
  }
  return scenario::defaultRunUntilSeconds(info->make());
}

ChaosRunReport ChaosRunner::runPlan(const ChaosPlan& plan,
                                    const ChaosOptions& options) const {
  const auto* info = registry_->find(plan.scenario);
  if (info == nullptr) {
    throw std::invalid_argument("unknown scenario: " + plan.scenario);
  }
  auto spec = info->make();
  spec.seed = plan.seed;
  // Failure in a chaos run means invariant violations, nothing else: the
  // plan replaces the spec's scripted faults, and its shape checks (tuned
  // for fault-free runs) are dropped.
  spec.faults.clear();
  spec.checks.clear();
  // Scripted agent crashes belong to the plan too (the "qos-agent"
  // target); resilience wiring itself stays on via spec.resil.
  spec.agent_crashes.clear();
  if (plan.horizon_seconds > 0) spec.run_until_seconds = plan.horizon_seconds;
  // The monitor attaches violation context from the run's trace buffer.
  spec.observe = true;

  ChaosRunReport report;
  report.plan = plan;
  std::string injector_log, injector_footer;
  PoolCeilingGuard pool_guard(options.pool_ceiling_bytes);

  ChaosTargets targets;
  std::unique_ptr<InvariantMonitor> monitor;
  scenario::RunHooks hooks;
  hooks.on_built = [&](scenario::BuiltScenario& built) {
    // The spec carries no faults, so the builder made no injector; the
    // chaos run installs its own, seeded by the plan.
    built.injector =
        std::make_unique<sim::FaultInjector>(built.rig.sim, plan.seed);
    targets = registerChaosTargets(built, *built.injector,
                                   /*loss_seed=*/plan.seed * 2654435761u + 1);
    monitor = std::make_unique<InvariantMonitor>(
        built.rig.sim, options.cadence_seconds, options.max_violations);
    if (built.trace != nullptr) {
      monitor->attachTrace(built.trace.get(), options.trace_tail);
    }
    attachStandardInvariants(*monitor, built);
    monitor->arm();
    if (options.prepare) options.prepare(built, targets);
    built.injector->schedulePlan(plan.events);
  };
  hooks.before_teardown = [&](scenario::BuiltScenario& built) {
    monitor->sweep();  // teardown sweep: catch end-state violations
    report.injector_fired = built.injector->firedCount();
    report.injector_skipped = built.injector->skippedActions();
    injector_log = built.injector->logText();
    injector_footer = built.injector->logFooter();
    // The chaos machinery references rig internals (interfaces, CPU
    // scheduler, managers); release it while the rig is still alive.
    targets = ChaosTargets{};
  };

  scenario::ScenarioRunner runner(/*echo=*/nullptr);
  runner.run(spec, hooks);

  if (monitor != nullptr) report.violations = monitor->violations();
  report.log =
      buildChaosLog(plan, injector_log, injector_footer, report.violations);
  return report;
}

ChaosOutcome ChaosRunner::runSeeds(const std::string& scenario,
                                   std::uint64_t first_seed, int count,
                                   const ChaosOptions& options) const {
  ChaosOutcome outcome;
  if (count <= 0) return outcome;
  const double horizon = resolveHorizon(scenario, options);
  const ChaosPlanGenerator generator(options.profile);

  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads < 1) threads = 1;
  if (threads > count) threads = count;

  // Seed batches: each batch runs `threads` seeds concurrently (one
  // Simulator per run), then the results are scanned in seed order so the
  // first failing seed is independent of thread scheduling.
  for (int batch_start = 0; batch_start < count; batch_start += threads) {
    const int batch = std::min(threads, count - batch_start);
    std::vector<ChaosRunReport> reports(batch);
    std::atomic<int> next{0};
    auto worker = [&] {
      for (int i = next.fetch_add(1); i < batch; i = next.fetch_add(1)) {
        const auto seed =
            first_seed + static_cast<std::uint64_t>(batch_start + i);
        const auto plan = generator.generate(scenario, seed, horizon);
        reports[i] = runPlan(plan, options);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(batch);
    for (int i = 0; i < batch; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();

    for (auto& report : reports) {
      const bool failed = !report.ok();
      outcome.reports.push_back(std::move(report));
      if (failed) {
        outcome.failing_index =
            static_cast<int>(outcome.reports.size()) - 1;
        return outcome;
      }
    }
  }
  return outcome;
}

ChaosPlan ChaosRunner::shrink(const ChaosPlan& failing,
                              const ChaosOptions& options, int* steps) const {
  int runs = 0;
  const auto baseline = runPlan(failing, options);
  ++runs;
  ChaosPlan minimal = failing;
  if (baseline.ok()) {
    if (steps != nullptr) *steps = runs;
    return minimal;  // nothing to shrink: the plan does not fail
  }
  // Shrinking preserves the *failure mode*, not just "some failure": a
  // candidate only counts as reproducing when its first violation hits
  // the same invariant.
  const std::string invariant = baseline.violations.front().name;
  auto reproduces = [&](std::vector<sim::FaultEvent> events) {
    ChaosPlan candidate = failing;
    candidate.events = std::move(events);
    const auto report = runPlan(candidate, options);
    ++runs;
    return !report.violations.empty() &&
           report.violations.front().name == invariant;
  };

  auto& events = minimal.events;
  std::size_t chunk = (events.size() + 1) / 2;
  while (!events.empty() && chunk >= 1) {
    bool removed_any = false;
    for (std::size_t start = 0; start < events.size();) {
      auto candidate = events;
      const auto end =
          std::min(start + chunk, candidate.size());
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(start),
                      candidate.begin() + static_cast<std::ptrdiff_t>(end));
      if (reproduces(candidate)) {
        events = std::move(candidate);
        removed_any = true;  // retry the same position: it holds new events
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) {
      if (!removed_any) break;  // a full single-event pass removed nothing
    } else {
      chunk = (chunk + 1) / 2;
    }
  }
  if (steps != nullptr) *steps = runs;
  return minimal;
}

}  // namespace mgq::chaos
