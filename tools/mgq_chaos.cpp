// mgq_chaos: randomized chaos/soak runs over the registered scenarios,
// with deterministic shrink-to-minimal replay.
//
//   mgq_chaos --scenario NAME [--seeds N] [--first-seed S] [--horizon SEC]
//             [--shrink] [--threads N] [--json-dir DIR]
//             [--crash-rate R] [--renewal-storm-rate R]
//             [--corrupt-rate R] [--dup-rate R] [--reorder-rate R]
//             [--partition-rate R] [--pool-ceiling BYTES]
//   mgq_chaos --replay FILE [--json-dir DIR]
//
// The seed sweep generates one randomized fault plan per seed and runs it
// under the invariant monitors; the sweep stops at the first violation.
// With --shrink, the failing plan is delta-debugged down to a minimal
// reproducing schedule and written as a replay file
// (chaos_<scenario>_seed<seed>.replay in --json-dir) that --replay
// re-runs byte-identically. Exit code: 0 when every seed held its
// invariants, 1 on a violation (including a reproducing replay), 2 on
// usage errors.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "chaos/runner.hpp"

namespace {

using namespace mgq;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario NAME [--seeds N] [--first-seed S]\n"
               "          [--horizon SEC] [--shrink] [--threads N]\n"
               "          [--crash-rate PER100S] "
               "[--renewal-storm-rate PER100S]\n"
               "          [--corrupt-rate PER100S] [--dup-rate PER100S]\n"
               "          [--reorder-rate PER100S] "
               "[--partition-rate PER100S]\n"
               "          [--pool-ceiling BYTES] [--json-dir DIR]\n"
               "       %s --replay FILE [--json-dir DIR]\n",
               argv0, argv0);
  return 2;
}

bool writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

void printViolations(const chaos::ChaosRunReport& report) {
  for (const auto& v : report.violations) {
    std::printf("  t=%.6f %s: %s\n", v.t_seconds, v.name.c_str(),
                v.message.c_str());
    for (const auto& line : v.trace_tail) {
      std::printf("    trace: %s\n", line.c_str());
    }
  }
}

int replayFile(const std::string& path, const std::string& json_dir) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read replay file '%s'\n", path.c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  chaos::ChaosPlan plan;
  std::string error;
  if (!chaos::parseReplay(buffer.str(), plan, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }

  chaos::ChaosRunner runner;
  chaos::ChaosRunReport report;
  try {
    report = runner.runPlan(plan);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("replayed %s seed=%llu events=%zu: %s\n",
              plan.scenario.c_str(),
              static_cast<unsigned long long>(plan.seed), plan.events.size(),
              report.ok() ? "no violations" : "VIOLATIONS");
  printViolations(report);
  const auto log_path = json_dir + "/chaos_replay.log";
  if (writeFile(log_path, report.log)) {
    std::printf("chaos log: %s\n", log_path.c_str());
  }
  return report.ok() ? 0 : 1;
}

int sweepSeeds(const std::string& scenario, std::uint64_t first_seed,
               int seeds, bool shrink, const chaos::ChaosOptions& options,
               const std::string& json_dir) {
  chaos::ChaosRunner runner;
  chaos::ChaosOutcome outcome;
  try {
    std::printf("chaos: %s seeds [%llu, %llu) horizon %.3gs\n",
                scenario.c_str(),
                static_cast<unsigned long long>(first_seed),
                static_cast<unsigned long long>(first_seed) + seeds,
                runner.resolveHorizon(scenario, options));
    outcome = runner.runSeeds(scenario, first_seed, seeds, options);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  if (outcome.ok()) {
    std::printf("%zu seed(s): all invariants held\n",
                outcome.reports.size());
    return 0;
  }

  const auto& failure = *outcome.failure();
  std::printf("seed %llu VIOLATED invariants after %zu clean seed(s):\n",
              static_cast<unsigned long long>(failure.plan.seed),
              outcome.reports.size() - 1);
  printViolations(failure);

  auto minimal = failure.plan;
  if (shrink) {
    int steps = 0;
    minimal = runner.shrink(failure.plan, options, &steps);
    std::printf("shrunk %zu -> %zu event(s) in %d run(s)\n",
                failure.plan.events.size(), minimal.events.size(), steps);
  }
  const auto replay_path = json_dir + "/chaos_" + scenario + "_seed" +
                           std::to_string(failure.plan.seed) + ".replay";
  if (writeFile(replay_path, chaos::serializeReplay(minimal))) {
    std::printf("replay file: %s\n", replay_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", replay_path.c_str());
  }
  const auto log_path = json_dir + "/chaos_" + scenario + "_seed" +
                        std::to_string(failure.plan.seed) + ".log";
  if (writeFile(log_path, failure.log)) {
    std::printf("chaos log:   %s\n", log_path.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario;
  std::string replay;
  std::uint64_t first_seed = 1;
  int seeds = 50;
  bool shrink = false;
  chaos::ChaosOptions options;
  std::string json_dir = ".";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    try {
      if (arg == "--scenario") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        scenario = v;
      } else if (arg == "--replay") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        replay = v;
      } else if (arg == "--seeds") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        seeds = std::stoi(v);
      } else if (arg == "--first-seed") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        first_seed = std::stoull(v);
      } else if (arg == "--horizon") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.horizon_seconds = std::stod(v);
      } else if (arg == "--shrink") {
        shrink = true;
      } else if (arg == "--threads") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.threads = std::stoi(v);
      } else if (arg == "--crash-rate") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.profile.agent_crashes_per_100s = std::stod(v);
      } else if (arg == "--renewal-storm-rate") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.profile.renewal_storms_per_100s = std::stod(v);
      } else if (arg == "--corrupt-rate") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.profile.corruption_episodes_per_100s = std::stod(v);
      } else if (arg == "--dup-rate") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.profile.duplicate_episodes_per_100s = std::stod(v);
      } else if (arg == "--reorder-rate") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.profile.reorder_episodes_per_100s = std::stod(v);
      } else if (arg == "--partition-rate") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.profile.partition_episodes_per_100s = std::stod(v);
      } else if (arg == "--pool-ceiling") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.pool_ceiling_bytes = std::stoll(v);
      } else if (arg == "--json-dir") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        json_dir = v;
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception&) {
      return usage(argv[0]);
    }
  }

  if (!replay.empty()) return replayFile(replay, json_dir);
  if (scenario.empty() || seeds <= 0) return usage(argv[0]);
  return sweepSeeds(scenario, first_seed, seeds, shrink, options, json_dir);
}
