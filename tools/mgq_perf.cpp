// mgq_perf: event-kernel + data-plane performance harness.
//
//   mgq_perf [--quick] [--skip-e2e] [--only MIX[,MIX...]] [--trials N]
//            [--threads N] [--json-dir DIR]
//            [--baseline FILE [--max-regress F]] [--write-baseline FILE]
//
// Runs the kernel micro mixes (schedule-heavy, cancel-heavy,
// wakeup-heavy) and the data-plane mixes (hop_forward, police_qdisc,
// tcp_bulk, mpi_pingpong), then — unless --skip-e2e — the end-to-end
// probes: one fig9_combined scenario run and a 200-seed chaos batch over
// fig1_under. Results are printed as a table and exported as
// BENCH_perf.json through the standard obs exporters, so the perf
// trajectory lands next to every other bench document.
//
// Each mix runs --trials times (default 3) and the best run is reported:
// on a shared machine the minimum wall time tracks the code's cost, the
// rest track the neighbors'.
//
// --only restricts the run to a comma-separated subset of mix names
// (implies --skip-e2e unless a probe name is listed). --baseline gates
// the mixes against a checked-in baseline JSON (flat
// {"mix": ops_per_sec} object): exit 1 when any mix present in the
// baseline regresses by more than --max-regress (default 0.30).
// --write-baseline records the current measurements in that format.
// --quick shrinks every mix for CI smoke runs; baselines should compare
// like against like.
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "perf_adapt.hpp"
#include "perf_dataplane.hpp"
#include "perf_kernel.hpp"
#include "util/table.hpp"

namespace {

constexpr const char* kMixNames[] = {
    "schedule_heavy", "cancel_heavy", "wakeup_heavy",    "hop_forward",
    "police_qdisc",   "tcp_bulk",     "mpi_pingpong",    "adapt_controller",
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--skip-e2e] [--only MIX[,MIX...]]\n"
               "          [--trials N] [--threads N] [--json-dir DIR]\n"
               "          [--baseline FILE] [--max-regress F]\n"
               "          [--write-baseline FILE]\n"
               "mixes:",
               argv0);
  for (const char* m : kMixNames) std::fprintf(stderr, " %s", m);
  std::fprintf(stderr, "\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgq;

  bool quick = false;
  bool skip_e2e = false;
  int trials = 3;
  int threads = 0;
  std::string json_dir = ".";
  std::string baseline;
  std::string write_baseline;
  std::string only_arg;
  double max_regress = 0.30;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--skip-e2e") {
      skip_e2e = true;
    } else if (arg == "--only") {
      only_arg = next("--only");
    } else if (arg == "--trials") {
      trials = std::atoi(next("--trials"));
      if (trials < 1) trials = 1;
    } else if (arg == "--threads") {
      threads = std::atoi(next("--threads"));
    } else if (arg == "--json-dir") {
      json_dir = next("--json-dir");
    } else if (arg == "--baseline") {
      baseline = next("--baseline");
    } else if (arg == "--max-regress") {
      max_regress = std::atof(next("--max-regress"));
    } else if (arg == "--write-baseline") {
      write_baseline = next("--write-baseline");
    } else {
      return usage(argv[0]);
    }
  }

  std::set<std::string> only;
  if (!only_arg.empty()) {
    skip_e2e = true;  // --only selects mixes; e2e probes are not mixes
    std::size_t pos = 0;
    while (pos <= only_arg.size()) {
      const auto comma = only_arg.find(',', pos);
      const auto end = comma == std::string::npos ? only_arg.size() : comma;
      const auto name = only_arg.substr(pos, end - pos);
      if (!name.empty()) {
        bool known = false;
        for (const char* m : kMixNames) known = known || name == m;
        if (!known) {
          std::fprintf(stderr, "unknown mix '%s'\n", name.c_str());
          return usage(argv[0]);
        }
        only.insert(name);
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  auto selected = [&](const char* name) {
    return only.empty() || only.count(name) > 0;
  };

  const int schedule_events = quick ? 20'000 : 100'000;
  const int schedule_repeat = quick ? 3 : 10;
  const int cancel_timers = quick ? 1'000 : 4'000;
  const int cancel_steps = quick ? 200'000 : 1'000'000;
  const int wakeup_procs = quick ? 200 : 1'000;
  const int wakeup_rounds = quick ? 200 : 500;
  const int chaos_seeds = quick ? 25 : 200;
  const int hop_packets = quick ? 20'000 : 100'000;
  const int hop_repeat = quick ? 2 : 5;
  const int police_packets = quick ? 100'000 : 500'000;
  const int police_repeat = quick ? 2 : 5;
  const std::int64_t bulk_bytes = quick ? 20'000'000 : 200'000'000;
  const int pingpong_rounds = quick ? 2'000 : 10'000;
  const std::int32_t pingpong_bytes = 16'384;
  const int adapt_tenants = 64;
  const double adapt_horizon = quick ? 30.0 : 120.0;

  // Best-of-N: rerun each mix and keep the fastest trial.
  auto best = [trials](auto&& run) {
    perf::MixResult r = run();
    for (int t = 1; t < trials; ++t) {
      perf::MixResult s = run();
      if (s.ops_per_sec > r.ops_per_sec) r = std::move(s);
    }
    return r;
  };

  std::vector<perf::MixResult> mixes;
  if (selected("schedule_heavy"))
    mixes.push_back(best(
        [&] { return perf::runScheduleHeavy(schedule_events, schedule_repeat); }));
  if (selected("cancel_heavy"))
    mixes.push_back(
        best([&] { return perf::runCancelHeavy(cancel_timers, cancel_steps); }));
  if (selected("wakeup_heavy"))
    mixes.push_back(
        best([&] { return perf::runWakeupHeavy(wakeup_procs, wakeup_rounds); }));
  if (selected("hop_forward"))
    mixes.push_back(
        best([&] { return perf::runHopForward(hop_packets, hop_repeat); }));
  if (selected("police_qdisc"))
    mixes.push_back(
        best([&] { return perf::runPoliceQdisc(police_packets, police_repeat); }));
  if (selected("tcp_bulk"))
    mixes.push_back(best([&] { return perf::runTcpBulk(bulk_bytes); }));
  if (selected("mpi_pingpong"))
    mixes.push_back(best(
        [&] { return perf::runMpiPingpong(pingpong_rounds, pingpong_bytes); }));
  if (selected("adapt_controller"))
    mixes.push_back(best(
        [&] { return perf::runAdaptController(adapt_tenants, adapt_horizon); }));

  std::vector<perf::WallResult> walls;
  if (!skip_e2e) {
    walls.push_back(perf::runScenarioWall("fig9_combined"));
    walls.push_back(perf::runChaosBatch("fig1_under", chaos_seeds, threads));
  }

  util::Table mix_table({"mix", "ops", "events", "wall_s", "ops_per_sec"});
  for (const auto& m : mixes) {
    mix_table.addRow({m.name, std::to_string(m.operations),
                      std::to_string(m.events_executed),
                      util::Table::num(m.wall_seconds, 3),
                      util::Table::num(m.ops_per_sec, 0)});
  }
  mix_table.renderAscii(std::cout);

  bool e2e_ok = true;
  if (!walls.empty()) {
    util::Table wall_table({"probe", "wall_s", "events", "ok"});
    for (const auto& w : walls) {
      wall_table.addRow({w.name, util::Table::num(w.wall_seconds, 3),
                         std::to_string(w.events_executed),
                         w.ok ? "yes" : "NO"});
      e2e_ok = e2e_ok && w.ok;
    }
    wall_table.renderAscii(std::cout);
  }

  obs::MetricsRegistry metrics;
  perf::recordResults(metrics, mixes, walls);
  if (!obs::exportBenchJson("perf", metrics, nullptr, json_dir)) return 1;

  if (!write_baseline.empty()) {
    if (!perf::writeBaseline(mixes, write_baseline)) {
      std::fprintf(stderr, "cannot write baseline %s\n",
                   write_baseline.c_str());
      return 1;
    }
    std::printf("baseline written to %s\n", write_baseline.c_str());
  }

  if (!baseline.empty()) {
    std::string error;
    const auto regressions =
        perf::checkBaseline(mixes, baseline, max_regress, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "baseline check failed: %s\n", error.c_str());
      return 1;
    }
    for (const auto& r : regressions) {
      std::fprintf(stderr, "PERF REGRESSION %s\n", r.c_str());
    }
    if (!regressions.empty()) return 1;
    std::printf("baseline check OK (max regress %.0f%%)\n",
                max_regress * 100.0);
  }

  return e2e_ok ? 0 : 1;
}
