// mgq_scenarios: list, run, and sweep the registered paper scenarios.
//
//   mgq_scenarios --list [--filter <substr>]
//   mgq_scenarios --run <name>[,<name>...] [--threads N] [--json-dir DIR]
//   mgq_scenarios --sweep <name> --param key=v1,v2,... [--param ...]
//                 [--threads N] [--json-dir DIR]
//
// --run executes each named scenario (in parallel when --threads allows),
// prints its check verdicts, and writes one BENCH_<name>.json per
// scenario. --sweep cross-expands the named scenario over the given
// parameters, runs every variant across the thread pool (one independent
// Simulator per run, so results are identical to serial execution), and
// writes a single merged, sorted BENCH_<name>_sweep.json. The exit code
// is nonzero when any check fails.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "scenario/catalog.hpp"
#include "scenario/check.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/sweep.hpp"
#include "util/table.hpp"

namespace {

using namespace mgq;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --list [--filter SUBSTR]\n"
               "       %s --run NAME[,NAME...] [--seed N] [--threads N]\n"
               "          [--json-dir D]\n"
               "       %s --sweep NAME --param KEY=V1,V2,... [--param ...]\n"
               "          [--seed N] [--threads N] [--json-dir D]\n",
               argv0, argv0, argv0);
  return 2;
}

std::vector<std::string> splitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool parseParam(const std::string& arg, scenario::SweepParam& out) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  out.key = arg.substr(0, eq);
  out.values.clear();
  for (const auto& v : splitCommas(arg.substr(eq + 1))) {
    try {
      out.values.push_back(std::stod(v));
    } catch (const std::exception&) {
      return false;
    }
  }
  return !out.values.empty();
}

int listScenarios(const std::string& filter) {
  const auto entries = scenario::ScenarioRegistry::paper().list(filter);
  util::Table table({"name", "paper_ref", "title"});
  for (const auto* info : entries) {
    table.addRow({info->name, info->paper_ref, info->title});
  }
  table.renderAscii(std::cout);
  std::printf("%zu scenario(s)\n", entries.size());
  return 0;
}

void printHeadline(const scenario::ScenarioResult& r) {
  std::printf("%-40s goodput %10.1f kb/s  checks %zu\n", r.name.c_str(),
              r.goodput_kbps, r.checks.size());
}

/// --seed override: retunes a spec's simulation seed via the sweep
/// parameter machinery so the CLI and `--param seed=...` behave alike.
bool applySeedOverride(scenario::ScenarioSpec& spec, const double* seed) {
  if (seed == nullptr) return true;
  if (!scenario::applyParam(spec, "seed", *seed)) {
    std::fprintf(stderr, "scenario '%s' does not accept a seed override\n",
                 spec.name.c_str());
    return false;
  }
  return true;
}

int runScenarios(const std::vector<std::string>& names, const double* seed,
                 int threads, const std::string& json_dir) {
  const auto& registry = scenario::ScenarioRegistry::paper();
  std::vector<scenario::ScenarioSpec> specs;
  for (const auto& name : names) {
    const auto* info = registry.find(name);
    if (info == nullptr) {
      std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                   name.c_str());
      return 2;
    }
    specs.push_back(info->make());
    if (!applySeedOverride(specs.back(), seed)) return 2;
  }

  scenario::SweepRunner pool(threads);
  const auto results = pool.run(specs);

  scenario::CheckReporter checks(&std::cout);
  for (const auto& r : results) {
    printHeadline(r);
    checks.merge(r.checks);
    checks.check(
        obs::exportMultiRunBenchJson(r.name, scenario::runExports({r}),
                                     json_dir),
        "wrote BENCH_" + r.name + ".json");
  }
  const int failed = checks.failures();
  if (failed > 0) {
    std::printf("\n%d check(s) FAILED\n", failed);
    return 1;
  }
  std::printf("\nall checks passed\n");
  return 0;
}

int sweepScenario(const std::string& name,
                  const std::vector<scenario::SweepParam>& params,
                  const double* seed, int threads,
                  const std::string& json_dir) {
  const auto& registry = scenario::ScenarioRegistry::paper();
  const auto* info = registry.find(name);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (try --list)\n", name.c_str());
    return 2;
  }
  std::vector<scenario::ScenarioSpec> specs;
  try {
    // The override lands on the base spec, so every sweep expansion
    // inherits it (a swept seed parameter still wins per variant).
    auto base = info->make();
    if (!applySeedOverride(base, seed)) return 2;
    specs = scenario::expandSweep(base, params);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  scenario::SweepRunner pool(threads);
  std::printf("sweeping %s: %zu variant(s) on %d thread(s)\n", name.c_str(),
              specs.size(), pool.threads());
  const auto results = pool.run(specs);

  util::Table table({"variant", "goodput_kbps", "policer_drops"});
  scenario::CheckReporter checks(&std::cout);
  for (const auto& r : results) {
    table.addRow({r.name, util::Table::num(r.goodput_kbps, 1),
                  std::to_string(r.policer_drops)});
    checks.merge(r.checks);
  }
  table.renderAscii(std::cout);

  checks.check(obs::exportMultiRunBenchJson(name + "_sweep",
                                            scenario::runExports(results),
                                            json_dir),
               "wrote BENCH_" + name + "_sweep.json");
  const int failed = checks.failures();
  if (failed > 0) {
    std::printf("\n%d check(s) FAILED\n", failed);
    return 1;
  }
  std::printf("\nall checks passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kNone, kList, kRun, kSweep } mode = Mode::kNone;
  std::string filter;
  std::vector<std::string> run_names;
  std::string sweep_name;
  std::vector<scenario::SweepParam> params;
  int threads = 0;
  std::string json_dir = ".";
  bool has_seed = false;
  double seed = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      mode = Mode::kList;
    } else if (arg == "--run") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      mode = Mode::kRun;
      run_names = splitCommas(v);
    } else if (arg == "--sweep") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      mode = Mode::kSweep;
      sweep_name = v;
    } else if (arg == "--param") {
      const char* v = next();
      scenario::SweepParam p;
      if (v == nullptr || !parseParam(v, p)) return usage(argv[0]);
      params.push_back(std::move(p));
    } else if (arg == "--filter") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      filter = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      threads = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      try {
        seed = static_cast<double>(std::stoull(v));
      } catch (const std::exception&) {
        return usage(argv[0]);
      }
      has_seed = true;
    } else if (arg == "--json-dir") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      json_dir = v;
    } else {
      return usage(argv[0]);
    }
  }

  switch (mode) {
    case Mode::kList:
      return listScenarios(filter);
    case Mode::kRun:
      if (run_names.empty()) return usage(argv[0]);
      return runScenarios(run_names, has_seed ? &seed : nullptr, threads,
                          json_dir);
    case Mode::kSweep:
      if (params.empty()) return usage(argv[0]);
      return sweepScenario(sweep_name, params, has_seed ? &seed : nullptr,
                           threads, json_dir);
    case Mode::kNone:
      break;
  }
  return usage(argv[0]);
}
